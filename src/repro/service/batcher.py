"""Batched log epochs: one ``run_update`` serves many recovery sessions.

The paper's deployment amortizes the distributed-log update by batching all
client insertions into one epoch every ~10 minutes.  :class:`EpochBatcher`
reproduces that rhythm: sessions ``submit`` their log insertion and block on
an :class:`EpochTicket`; each ``tick`` commits exactly one update epoch for
everything pending and fans the inclusion proofs back to every waiter.

Over a :class:`~repro.log.sharded.ShardedLog` the batcher runs **one epoch
lane per shard**: a tick groups the waiters by their identifier's shard,
fans ``run_update`` out through the service's lane workers (one FIFO worker
per shard, HsmWorkerPool discipline), joins all lanes, and only then
publishes the combined cross-shard root.  Lanes fail independently — a
shard whose epoch is rejected rolls back and fails *its* tickets only,
while sibling lanes commit (the paper's transactional ``run_update``, per
shard).

Because inclusion proofs are digest-exact (Merkle BST), committing an epoch
invalidates the proofs of sessions still mid-share-phase.  Each served
session therefore holds an *epoch lease* until it reports its share phase
done (``release``).  Leases are tracked **per shard lane**: each lane has
its own drain condition, and a lane runs its epoch as soon as *its* leases
drain, so a straggler on shard 7 defers only shard 7's epoch while every
other lane commits unimpeded.  A deferred lane's drain is bounded by
``lease_timeout``, measured from the first tick the lane deferred, so a
crashed client cannot stall its lane forever (abandoned sessions fall back
to client-side proof refresh; their late ``release`` after a timeout-clear
is a harmless no-op).  Every dropped straggler counts one ``lease_timeout``
— ``stats()`` reports the per-shard split.

Thread safety: all mutable state (waiters, leases, counters) is guarded by
``self._lock``; the ``_drained`` condition and the per-lane drain
conditions all wrap that same lock, so holding any of them serializes the
same state.  ``tick`` holds it for the whole epoch, so out-of-band log
reads may take ``batcher.lock`` to get a settled view.  Shard-lane fan-out
happens *inside* a tick: concurrency is between lanes (distinct shards,
per-device FIFO serialization), never between ticks.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.provider import ProviderError, ServiceProvider
from repro.log.sharded import shard_of

#: Bound on the per-epoch history kept for observability/tests; aggregate
#: counters (epochs_run, sessions_served, ...) are exact forever.
_HISTORY_LIMIT = 4096


class ServiceTimeout(ProviderError):
    """A session timed out waiting for the service (no epoch tick arrived)."""


class EpochTicket:
    """One session's claim on the next epoch; resolves to (id, proof).

    A ticket whose ``wait`` times out is *abandoned*: the session has
    already raised :class:`ServiceTimeout` and walked away, so the epoch
    that eventually serves the batch must not take an epoch lease on its
    behalf — nobody is left to ``release`` it, and an unreleased lease
    stalls the next tick for the full ``lease_timeout``.  ``resolve`` /
    ``fail`` report whether they landed (``False`` = already abandoned);
    abandonment and resolution race under ``_lock``, so exactly one side
    wins.
    """

    def __init__(self) -> None:
        self._done = threading.Event()
        self._result: Optional[Tuple[bytes, object]] = None
        self._error: Optional[Exception] = None
        self._lock = threading.Lock()
        self._abandoned = False

    @property
    def abandoned(self) -> bool:
        """True once ``wait`` timed out and the session gave up."""
        with self._lock:
            return self._abandoned

    def resolve(self, result: Tuple[bytes, object]) -> bool:
        """Fulfil the ticket with ``(identifier, inclusion proof)``.

        Returns ``False`` (and discards the result) if the session already
        abandoned the ticket — the caller must then skip the epoch lease.
        """
        with self._lock:
            if self._abandoned:
                return False
            self._result = result
            self._done.set()
            return True

    def fail(self, error: Exception) -> bool:
        """Fail the ticket; ``wait`` re-raises ``error`` on the session.

        Returns ``False`` if the session already abandoned the ticket.
        """
        with self._lock:
            if self._abandoned:
                return False
            self._error = error
            self._done.set()
            return True

    def wait(self, timeout: Optional[float] = None) -> Tuple[bytes, object]:
        """Block until an epoch serves this ticket (or ``timeout`` lapses).

        On timeout the ticket is marked abandoned before raising, unless a
        resolution raced in between the wait lapsing and the mark — in that
        case the (just-arrived) result is returned normally.
        """
        if not self._done.wait(timeout):
            with self._lock:
                if not self._done.is_set():
                    self._abandoned = True
                    raise ServiceTimeout(
                        f"no log epoch committed within {timeout}s"
                        " (is the ticker running?)"
                    )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result


class EpochBatcher:
    """Accumulates pending log insertions; commits one epoch per tick."""

    #: Lock contract, checked by `repro.lintkit`'s lock-discipline pass:
    #: every listed attribute may only be written inside a ``with`` block
    #: over one of its locks (``_drained`` is a Condition wrapping
    #: ``_lock``, so holding either serializes the same state).
    _GUARDED_BY = {
        "_waiters": ("_lock", "_drained"),
        "_leases": ("_lock", "_drained"),
        "_lease_shards": ("_lock", "_drained"),
        "_lane_blocked_since": ("_lock", "_drained"),
        "_lane_drained": ("_lock", "_drained"),
        "epochs_run": ("_lock", "_drained"),
        "entries_committed": ("_lock", "_drained"),
        "sessions_served": ("_lock", "_drained"),
        "lease_timeouts": ("_lock", "_drained"),
        "lease_timeouts_by_shard": ("_lock", "_drained"),
        "epoch_failures": ("_lock", "_drained"),
        "epoch_sessions": ("_lock", "_drained"),
        "epoch_digests": ("_lock", "_drained"),
        "abandoned_sessions": ("_lock", "_drained"),
    }

    def __init__(
        self,
        provider: ServiceProvider,
        lease_timeout: float = 10.0,
        run_epoch: Optional[Callable[[], None]] = None,
        shard_runner: Optional[
            Callable[[Sequence[int]], Dict[int, Optional[BaseException]]]
        ] = None,
    ) -> None:
        """``run_epoch`` commits one log update; defaults to the provider's
        installed runner.  The service passes a runner that routes every
        per-device protocol call through that device's FIFO worker.

        ``shard_runner`` enables lane mode over a sharded log: called with
        the shard indices that have work this tick, it must commit one
        epoch per listed shard (typically in parallel lanes) and return a
        per-shard outcome map (``None`` = committed, exception = that
        shard failed and rolled back)."""
        self._provider = provider
        self._run_epoch = run_epoch or provider.run_log_update
        self._shard_runner = shard_runner
        self._lease_timeout = lease_timeout
        self._lock = threading.Lock()
        self._drained = threading.Condition(self._lock)
        # (username, attempt, identifier, commitment, ticket) awaiting a tick
        self._waiters: List[Tuple[str, int, bytes, bytes, EpochTicket]] = []
        # shard lane -> (username, attempt) sessions served by that lane's
        # last epoch and still in their share phase — their inclusion proofs
        # pin the current digest.  A lane absent (or empty) is drained.
        # Unsharded deployments use lane 0.
        self._leases: Dict[int, Set[Tuple[str, int]]] = {}
        # (username, attempt) -> shard lane: release() only knows the
        # session key, and must not re-derive the shard (identifiers are
        # gone by then).  A key absent here holds no lease anywhere — a
        # straggler's late release resolves to a no-op through this map.
        self._lease_shards: Dict[Tuple[str, int], int] = {}
        # shard lane -> monotonic time the lane first deferred a tick on
        # outstanding leases.  Persists across ticks: a deferred lane is
        # skipped, not waited on, so its lease_timeout is measured from the
        # first deferral rather than from any single tick's start.
        self._lane_blocked_since: Dict[int, float] = {}
        # shard lane -> drain condition (lazily created, wraps self._lock).
        self._lane_drained: Dict[int, threading.Condition] = {}
        self.epochs_run = 0
        self.entries_committed = 0
        self.sessions_served = 0
        self.lease_timeouts = 0
        #: per-shard split of ``lease_timeouts`` (every dropped straggler
        #: counts one, attributed to its lane)
        self.lease_timeouts_by_shard: Dict[int, int] = {}
        self.epoch_failures = 0
        #: sessions that timed out in ``wait`` before their epoch landed —
        #: served without a lease (the waiter is gone; see EpochTicket)
        self.abandoned_sessions = 0
        #: sessions served per epoch, newest-last (stress tests assert on it)
        self.epoch_sessions: Deque[int] = deque(maxlen=_HISTORY_LIMIT)
        #: digest after each committed epoch (proof-validity cross-checks)
        self.epoch_digests: Deque[bytes] = deque(maxlen=_HISTORY_LIMIT)

    @property
    def lock(self) -> threading.Lock:
        """Serializes log access; hold it for any out-of-band log reads."""
        return self._lock

    def submit(self, username: str, attempt: int, commitment: bytes) -> EpochTicket:
        """Queue one log insertion for the next epoch.

        A rejected insertion fails the ticket instead of raising: KeyError
        for a duplicate identifier, ValueError for a malformed session
        (``attempt_identifier`` refuses reserved characters in the username
        and negative attempt numbers).  Either way the caller gets a
        :class:`ProviderError` from ``wait`` and the batch is unaffected.
        """
        ticket = EpochTicket()
        with self._lock:
            try:
                identifier = self._provider.log_recovery_attempt(
                    username, attempt, commitment
                )
            except (KeyError, ValueError) as exc:
                ticket.fail(ProviderError(str(exc)))
                return ticket
            self._waiters.append((username, attempt, identifier, commitment, ticket))
        return ticket

    def pending_sessions(self) -> int:
        """How many submitted sessions are waiting for the next tick."""
        with self._lock:
            return len(self._waiters)

    def tick(self) -> int:
        """Commit one update epoch; returns the number of sessions served.

        An idle tick (nothing submitted, nothing pending) returns
        immediately via an O(1) emptiness probe — it neither snapshots the
        pending queue nor drains leases it has no epoch to break.  Sharded
        logs run one epoch lane per shard; each lane waits only on *its
        own* leases (see :meth:`_tick_shard_lanes`).  The single-log path
        is lane 0: wait (bounded by ``lease_timeout``) for its leases to
        drain, run exactly one ``run_update`` over everything pending, and
        resolve every waiting ticket with its inclusion proof.
        """
        with self._drained:
            log = self._provider.log
            if not self._waiters and not self._log_has_pending(log):
                return 0
            num_shards = getattr(log, "num_shards", 1)
            if self._shard_runner is not None and num_shards > 1:
                return self._tick_shard_lanes(num_shards)
            self._drain_lane(0)
            waiters, self._waiters = self._waiters, []
            try:
                self._run_epoch()
            except Exception as exc:
                # The epoch itself failed (quorum lost, bad chunk, worker
                # timeout).  Fail this batch's tickets but keep the batcher
                # alive: the ticker must survive to serve later sessions.
                self.epoch_failures += 1
                error = ProviderError(f"log update epoch failed: {exc!r}")
                error.__cause__ = exc
                for *_, ticket in waiters:
                    ticket.fail(error)
                return 0
            self.epochs_run += 1
            self.entries_committed += len(waiters)
            served = self._serve_waiters(waiters, 0)
            self.epoch_sessions.append(served)
            self.epoch_digests.append(log.digest)
            self._journal_publish()
        return served

    @staticmethod
    def _log_has_pending(log) -> bool:
        """O(1) emptiness probe; falls back to the snapshotting ``pending``
        property for duck-typed logs that predate ``has_pending``."""
        flag = getattr(log, "has_pending", None)
        if flag is None:
            return bool(log.pending)
        return bool(flag)

    # lint: unguarded[called only with self._lock held (both tick paths); the lane condition wraps that same lock]
    def _drain_lane(self, shard: int) -> None:
        """Block until ``shard``'s leases drain, bounded by ``lease_timeout``.

        The deadline is anchored at the lane's first deferral
        (``_lane_blocked_since``), which may predate this call by several
        ticks in sharded mode; stragglers past it are dropped via
        :meth:`_expire_lane`.
        """
        if not self._leases.get(shard):
            self._lane_blocked_since.pop(shard, None)
            return
        cond = self._lane_cond(shard)
        start = self._lane_blocked_since.setdefault(shard, time.monotonic())
        deadline = start + self._lease_timeout
        while self._leases.get(shard):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                # Stragglers lose their lease; if still alive they will
                # refresh their proofs through the provider.
                self._expire_lane(shard)
                break
            cond.wait(remaining)
        self._lane_blocked_since.pop(shard, None)

    # lint: unguarded[called only with self._lock held (drain/defer paths)]
    def _expire_lane(self, shard: int) -> None:
        """Drop every straggler lease on ``shard``, counting each one in
        ``lease_timeouts`` and the per-shard split."""
        leases = self._leases.pop(shard, None)
        self._lane_blocked_since.pop(shard, None)
        if not leases:
            return
        for key in leases:
            self._lease_shards.pop(key, None)
        self.lease_timeouts += len(leases)
        self.lease_timeouts_by_shard[shard] = self.lease_timeouts_by_shard.get(
            shard, 0
        ) + len(leases)

    # lint: unguarded[called only with self._lock held; all lane conditions wrap that same lock]
    def _lane_cond(self, shard: int) -> threading.Condition:
        """The lane's drain condition, created on first use."""
        cond = self._lane_drained.get(shard)
        if cond is None:
            cond = self._lane_drained[shard] = threading.Condition(self._lock)
        return cond

    # lint: unguarded[called only with self._drained held (both tick paths)]
    def _serve_waiters(self, waiters: List[Tuple], shard: int) -> int:
        """Resolve each waiter with its inclusion proof; returns the count
        actually served.  Called with ``self._drained`` held.  Each lease
        is filed under ``shard``'s lane (0 for the single-log path).

        A ticket whose session already timed out and abandoned it gets no
        epoch lease — the waiter is gone and would never ``release``, and
        one leaked lease stalls its lane's next epoch for the whole
        ``lease_timeout`` (its entry is committed regardless; the client
        retries with a fresh attempt).
        """
        served = 0
        for username, attempt, identifier, commitment, ticket in waiters:
            proof = self._provider.log.prove_includes(identifier, commitment)
            if proof is None:  # pragma: no cover - insert guarantees presence
                ticket.fail(ProviderError("inclusion proof unavailable after epoch"))
                continue
            if not ticket.resolve((identifier, proof)):
                self.abandoned_sessions += 1
                continue
            key = (username, attempt)
            self._leases.setdefault(shard, set()).add(key)
            self._lease_shards[key] = shard
            self.sessions_served += 1
            served += 1
        return served

    def _journal_publish(self) -> None:
        """Record the post-epoch root in the provider's durability journal
        (no-op for non-durable deployments)."""
        journal = getattr(self._provider, "journal", None)
        if journal is not None:
            journal.record_publish(self._provider.log.digest)

    # lint: unguarded[called only from tick(), which already holds self._drained for the whole epoch — see the docstring below]
    def _tick_shard_lanes(self, num_shards: int) -> int:
        """One tick over a sharded log: fan out the runnable lanes, join,
        publish one root.

        Called with ``self._drained`` held (from :meth:`tick`).  Lanes are
        independent: a lane runs as soon as *its* leases are drained.  A
        lane still mid-share-phase is *deferred*, not waited on — its
        waiters are requeued for the next tick and its block is timed from
        the first deferral (``_lane_blocked_since``), so its leases still
        expire after ``lease_timeout`` even though no tick sat blocking on
        them; a straggler on one shard therefore never delays another
        shard's epoch.  Only when *no* lane with work is runnable does the
        tick block, until the earliest lane drains or times out.

        Each runnable shard gets one epoch; a failed shard fails only the
        tickets routed to it, and ``epochs_run``/``epoch_failures`` count
        per shard epoch.  The combined cross-shard root is recorded once,
        after every lane has settled — and only if at least one lane
        committed, matching the single-log path: a tick where *every* lane
        failed changed no digest, so appending a history row for it would
        desynchronize ``epoch_sessions``/``epoch_digests`` from the epochs
        that actually happened.
        """
        log = self._provider.log
        while True:
            waiters, self._waiters = self._waiters, []
            by_shard: Dict[int, List[Tuple]] = {}
            for waiter in waiters:
                by_shard.setdefault(shard_of(waiter[2], num_shards), []).append(
                    waiter
                )
            wanted = sorted(set(by_shard) | set(log.shards_with_pending()))
            now = time.monotonic()
            ready: List[int] = []
            deferred: List[int] = []
            for shard in wanted:
                if not self._leases.get(shard):
                    self._lane_blocked_since.pop(shard, None)
                    ready.append(shard)
                    continue
                since = self._lane_blocked_since.setdefault(shard, now)
                if now - since >= self._lease_timeout:
                    self._expire_lane(shard)
                    ready.append(shard)
                else:
                    deferred.append(shard)
            if ready:
                if deferred:
                    held = set(deferred)
                    self._waiters[:0] = [
                        w for w in waiters if shard_of(w[2], num_shards) in held
                    ]
                    for shard in held:
                        by_shard.pop(shard, None)
                break
            if not wanted:
                return 0
            # Every lane with work is mid-share-phase: requeue everything
            # and block until the earliest lane drains or times out.
            self._waiters[:0] = waiters
            earliest = min(self._lane_blocked_since[s] for s in deferred)
            remaining = earliest + self._lease_timeout - now
            if remaining > 0:
                self._drained.wait(remaining)
        outcomes = self._shard_runner(ready)
        served = 0
        committed_lanes = 0
        for shard in ready:
            error = outcomes.get(shard)
            shard_waiters = by_shard.get(shard, [])
            if error is not None:
                self.epoch_failures += 1
                failure = ProviderError(f"shard {shard} epoch failed: {error!r}")
                failure.__cause__ = error
                for *_, ticket in shard_waiters:
                    ticket.fail(failure)
                continue
            self.epochs_run += 1
            self.entries_committed += len(shard_waiters)
            committed_lanes += 1
            served += self._serve_waiters(shard_waiters, shard)
        if committed_lanes:
            self.epoch_sessions.append(served)
            self.epoch_digests.append(log.digest)
            self._journal_publish()
        return served

    def release(self, username: str, attempt: int) -> None:
        """Drop a session's epoch lease (its share phase is over).

        A late release — arriving after the lease was already dropped by a
        timeout expiry — is a harmless no-op: the reverse map no longer
        knows the session, so no lane's lease set is touched and no lane
        condition is notified (a straggler cannot wake the wrong lane).
        """
        key = (username, attempt)
        with self._drained:
            shard = self._lease_shards.pop(key, None)
            if shard is None:
                return
            leases = self._leases.get(shard)
            if leases is None:  # pragma: no cover - maps move in lockstep
                return
            leases.discard(key)
            if leases:
                return
            del self._leases[shard]
            self._lane_blocked_since.pop(shard, None)
            cond = self._lane_drained.get(shard)
            if cond is not None:
                cond.notify_all()
            self._drained.notify_all()

    def outstanding_leases(self, shard: Optional[int] = None) -> int:
        """Sessions served by a committed epoch and still mid-share-phase —
        across all lanes, or on one ``shard``'s lane."""
        with self._lock:
            if shard is None:
                return sum(len(lane) for lane in self._leases.values())
            return len(self._leases.get(shard, ()))

    def stats(self) -> dict:
        """Counter snapshot; the recovery service merges this into its own
        ``stats()``.  ``lease_timeouts_by_shard`` /
        ``outstanding_leases_by_shard`` expose the per-lane split (lane 0
        for unsharded deployments)."""
        with self._lock:
            return {
                "epochs_run": self.epochs_run,
                "entries_committed": self.entries_committed,
                "sessions_served": self.sessions_served,
                "epoch_sessions": list(self.epoch_sessions),
                "lease_timeouts": self.lease_timeouts,
                "lease_timeouts_by_shard": dict(self.lease_timeouts_by_shard),
                "epoch_failures": self.epoch_failures,
                "abandoned_sessions": self.abandoned_sessions,
                "outstanding_leases": sum(
                    len(lane) for lane in self._leases.values()
                ),
                "outstanding_leases_by_shard": {
                    shard: len(lane)
                    for shard, lane in sorted(self._leases.items())
                },
                "pending_sessions": len(self._waiters),
            }
