"""Batched log epochs: one ``run_update`` serves many recovery sessions.

The paper's deployment amortizes the distributed-log update by batching all
client insertions into one epoch every ~10 minutes.  :class:`EpochBatcher`
reproduces that rhythm: sessions ``submit`` their log insertion and block on
an :class:`EpochTicket`; each ``tick`` commits exactly one update epoch for
everything pending and fans the inclusion proofs back to every waiter.

Over a :class:`~repro.log.sharded.ShardedLog` the batcher runs **one epoch
lane per shard**: a tick groups the waiters by their identifier's shard,
fans ``run_update`` out through the service's lane workers (one FIFO worker
per shard, HsmWorkerPool discipline), joins all lanes, and only then
publishes the combined cross-shard root.  Lanes fail independently — a
shard whose epoch is rejected rolls back and fails *its* tickets only,
while sibling lanes commit (the paper's transactional ``run_update``, per
shard).

Because inclusion proofs are digest-exact (Merkle BST), committing an epoch
invalidates the proofs of sessions still mid-share-phase.  Each served
session therefore holds an *epoch lease* until it reports its share phase
done (``release``); a tick waits for outstanding leases to drain — bounded
by ``lease_timeout`` so a crashed client cannot stall the log forever
(abandoned sessions fall back to client-side proof refresh).  (Leases are
drained globally even in sharded mode; per-shard lease tracking would let
untouched lanes tick early and is noted as future work.)

Thread safety: all mutable state (waiters, leases, counters) is guarded by
``self._lock`` / the ``_drained`` condition; ``tick`` holds it for the
whole epoch, so out-of-band log reads may take ``batcher.lock`` to get a
settled view.  Shard-lane fan-out happens *inside* a tick: concurrency is
between lanes (distinct shards, per-device FIFO serialization), never
between ticks.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.provider import ProviderError, ServiceProvider
from repro.log.sharded import shard_of

#: Bound on the per-epoch history kept for observability/tests; aggregate
#: counters (epochs_run, sessions_served, ...) are exact forever.
_HISTORY_LIMIT = 4096


class ServiceTimeout(ProviderError):
    """A session timed out waiting for the service (no epoch tick arrived)."""


class EpochTicket:
    """One session's claim on the next epoch; resolves to (id, proof).

    A ticket whose ``wait`` times out is *abandoned*: the session has
    already raised :class:`ServiceTimeout` and walked away, so the epoch
    that eventually serves the batch must not take an epoch lease on its
    behalf — nobody is left to ``release`` it, and an unreleased lease
    stalls the next tick for the full ``lease_timeout``.  ``resolve`` /
    ``fail`` report whether they landed (``False`` = already abandoned);
    abandonment and resolution race under ``_lock``, so exactly one side
    wins.
    """

    def __init__(self) -> None:
        self._done = threading.Event()
        self._result: Optional[Tuple[bytes, object]] = None
        self._error: Optional[Exception] = None
        self._lock = threading.Lock()
        self._abandoned = False

    @property
    def abandoned(self) -> bool:
        """True once ``wait`` timed out and the session gave up."""
        with self._lock:
            return self._abandoned

    def resolve(self, result: Tuple[bytes, object]) -> bool:
        """Fulfil the ticket with ``(identifier, inclusion proof)``.

        Returns ``False`` (and discards the result) if the session already
        abandoned the ticket — the caller must then skip the epoch lease.
        """
        with self._lock:
            if self._abandoned:
                return False
            self._result = result
            self._done.set()
            return True

    def fail(self, error: Exception) -> bool:
        """Fail the ticket; ``wait`` re-raises ``error`` on the session.

        Returns ``False`` if the session already abandoned the ticket.
        """
        with self._lock:
            if self._abandoned:
                return False
            self._error = error
            self._done.set()
            return True

    def wait(self, timeout: Optional[float] = None) -> Tuple[bytes, object]:
        """Block until an epoch serves this ticket (or ``timeout`` lapses).

        On timeout the ticket is marked abandoned before raising, unless a
        resolution raced in between the wait lapsing and the mark — in that
        case the (just-arrived) result is returned normally.
        """
        if not self._done.wait(timeout):
            with self._lock:
                if not self._done.is_set():
                    self._abandoned = True
                    raise ServiceTimeout(
                        f"no log epoch committed within {timeout}s"
                        " (is the ticker running?)"
                    )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result


class EpochBatcher:
    """Accumulates pending log insertions; commits one epoch per tick."""

    #: Lock contract, checked by `repro.lintkit`'s lock-discipline pass:
    #: every listed attribute may only be written inside a ``with`` block
    #: over one of its locks (``_drained`` is a Condition wrapping
    #: ``_lock``, so holding either serializes the same state).
    _GUARDED_BY = {
        "_waiters": ("_lock", "_drained"),
        "_leases": ("_lock", "_drained"),
        "epochs_run": ("_lock", "_drained"),
        "entries_committed": ("_lock", "_drained"),
        "sessions_served": ("_lock", "_drained"),
        "lease_timeouts": ("_lock", "_drained"),
        "epoch_failures": ("_lock", "_drained"),
        "epoch_sessions": ("_lock", "_drained"),
        "epoch_digests": ("_lock", "_drained"),
        "abandoned_sessions": ("_lock", "_drained"),
    }

    def __init__(
        self,
        provider: ServiceProvider,
        lease_timeout: float = 10.0,
        run_epoch: Optional[Callable[[], None]] = None,
        shard_runner: Optional[
            Callable[[Sequence[int]], Dict[int, Optional[BaseException]]]
        ] = None,
    ) -> None:
        """``run_epoch`` commits one log update; defaults to the provider's
        installed runner.  The service passes a runner that routes every
        per-device protocol call through that device's FIFO worker.

        ``shard_runner`` enables lane mode over a sharded log: called with
        the shard indices that have work this tick, it must commit one
        epoch per listed shard (typically in parallel lanes) and return a
        per-shard outcome map (``None`` = committed, exception = that
        shard failed and rolled back)."""
        self._provider = provider
        self._run_epoch = run_epoch or provider.run_log_update
        self._shard_runner = shard_runner
        self._lease_timeout = lease_timeout
        self._lock = threading.Lock()
        self._drained = threading.Condition(self._lock)
        # (username, attempt, identifier, commitment, ticket) awaiting a tick
        self._waiters: List[Tuple[str, int, bytes, bytes, EpochTicket]] = []
        # (username, attempt) sessions served by the last epoch and still in
        # their share phase — their inclusion proofs pin the current digest.
        self._leases: Set[Tuple[str, int]] = set()
        self.epochs_run = 0
        self.entries_committed = 0
        self.sessions_served = 0
        self.lease_timeouts = 0
        self.epoch_failures = 0
        #: sessions that timed out in ``wait`` before their epoch landed —
        #: served without a lease (the waiter is gone; see EpochTicket)
        self.abandoned_sessions = 0
        #: sessions served per epoch, newest-last (stress tests assert on it)
        self.epoch_sessions: Deque[int] = deque(maxlen=_HISTORY_LIMIT)
        #: digest after each committed epoch (proof-validity cross-checks)
        self.epoch_digests: Deque[bytes] = deque(maxlen=_HISTORY_LIMIT)

    @property
    def lock(self) -> threading.Lock:
        """Serializes log access; hold it for any out-of-band log reads."""
        return self._lock

    def submit(self, username: str, attempt: int, commitment: bytes) -> EpochTicket:
        """Queue one log insertion for the next epoch.

        A rejected insertion fails the ticket instead of raising: KeyError
        for a duplicate identifier, ValueError for a malformed session
        (``attempt_identifier`` refuses reserved characters in the username
        and negative attempt numbers).  Either way the caller gets a
        :class:`ProviderError` from ``wait`` and the batch is unaffected.
        """
        ticket = EpochTicket()
        with self._lock:
            try:
                identifier = self._provider.log_recovery_attempt(
                    username, attempt, commitment
                )
            except (KeyError, ValueError) as exc:
                ticket.fail(ProviderError(str(exc)))
                return ticket
            self._waiters.append((username, attempt, identifier, commitment, ticket))
        return ticket

    def pending_sessions(self) -> int:
        """How many submitted sessions are waiting for the next tick."""
        with self._lock:
            return len(self._waiters)

    def tick(self) -> int:
        """Commit one update epoch; returns the number of sessions served.

        Waits (bounded) for the previous epoch's share phases to drain
        first, then runs exactly one ``run_update`` over everything pending
        and resolves every waiting ticket with its inclusion proof.
        """
        with self._drained:
            deadline = time.monotonic() + self._lease_timeout
            while self._leases:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    # Stragglers lose their lease; if still alive they will
                    # refresh their proofs through the provider.
                    self.lease_timeouts += 1
                    self._leases.clear()
                    break
                self._drained.wait(remaining)
            waiters, self._waiters = self._waiters, []
            if not waiters and not self._provider.log.pending:
                return 0
            num_shards = getattr(self._provider.log, "num_shards", 1)
            if self._shard_runner is not None and num_shards > 1:
                return self._tick_shard_lanes(waiters, num_shards)
            try:
                self._run_epoch()
            except Exception as exc:
                # The epoch itself failed (quorum lost, bad chunk, worker
                # timeout).  Fail this batch's tickets but keep the batcher
                # alive: the ticker must survive to serve later sessions.
                self.epoch_failures += 1
                error = ProviderError(f"log update epoch failed: {exc!r}")
                error.__cause__ = exc
                for *_, ticket in waiters:
                    ticket.fail(error)
                return 0
            self.epochs_run += 1
            self.entries_committed += len(waiters)
            served = self._serve_waiters(waiters)
            self.epoch_sessions.append(served)
            self.epoch_digests.append(self._provider.log.digest)
            self._journal_publish()
        return served

    # lint: unguarded[called only with self._drained held (both tick paths)]
    def _serve_waiters(self, waiters: List[Tuple]) -> int:
        """Resolve each waiter with its inclusion proof; returns the count
        actually served.  Called with ``self._drained`` held.

        A ticket whose session already timed out and abandoned it gets no
        epoch lease — the waiter is gone and would never ``release``, and
        one leaked lease stalls the next tick for the whole
        ``lease_timeout`` (its entry is committed regardless; the client
        retries with a fresh attempt).
        """
        served = 0
        for username, attempt, identifier, commitment, ticket in waiters:
            proof = self._provider.log.prove_includes(identifier, commitment)
            if proof is None:  # pragma: no cover - insert guarantees presence
                ticket.fail(ProviderError("inclusion proof unavailable after epoch"))
                continue
            if not ticket.resolve((identifier, proof)):
                self.abandoned_sessions += 1
                continue
            self._leases.add((username, attempt))
            self.sessions_served += 1
            served += 1
        return served

    def _journal_publish(self) -> None:
        """Record the post-epoch root in the provider's durability journal
        (no-op for non-durable deployments)."""
        journal = getattr(self._provider, "journal", None)
        if journal is not None:
            journal.record_publish(self._provider.log.digest)

    # lint: unguarded[called only from tick(), which already holds self._drained for the whole epoch — see the docstring below]
    def _tick_shard_lanes(self, waiters: List[Tuple], num_shards: int) -> int:
        """One tick over a sharded log: fan out, join, publish one root.

        Called with ``self._drained`` held (from :meth:`tick`).  Each shard
        with queued work gets one epoch; a failed shard fails only the
        tickets routed to it, and ``epochs_run``/``epoch_failures`` count
        per shard epoch.  The combined cross-shard root is recorded once,
        after every lane has settled — and only if at least one lane
        committed, matching the single-log path: a tick where *every* lane
        failed changed no digest, so appending a history row for it would
        desynchronize ``epoch_sessions``/``epoch_digests`` from the epochs
        that actually happened.
        """
        log = self._provider.log
        by_shard: Dict[int, List[Tuple]] = {}
        for waiter in waiters:
            by_shard.setdefault(shard_of(waiter[2], num_shards), []).append(waiter)
        shards_to_run = sorted(set(by_shard) | set(log.shards_with_pending()))
        outcomes = self._shard_runner(shards_to_run)
        served = 0
        committed_lanes = 0
        for shard in shards_to_run:
            error = outcomes.get(shard)
            shard_waiters = by_shard.get(shard, [])
            if error is not None:
                self.epoch_failures += 1
                failure = ProviderError(f"shard {shard} epoch failed: {error!r}")
                failure.__cause__ = error
                for *_, ticket in shard_waiters:
                    ticket.fail(failure)
                continue
            self.epochs_run += 1
            self.entries_committed += len(shard_waiters)
            committed_lanes += 1
            served += self._serve_waiters(shard_waiters)
        if committed_lanes:
            self.epoch_sessions.append(served)
            self.epoch_digests.append(log.digest)
            self._journal_publish()
        return served

    def release(self, username: str, attempt: int) -> None:
        """Drop a session's epoch lease (its share phase is over)."""
        with self._drained:
            self._leases.discard((username, attempt))
            if not self._leases:
                self._drained.notify_all()

    def outstanding_leases(self) -> int:
        """Sessions served by the last epoch and still mid-share-phase."""
        with self._lock:
            return len(self._leases)
