"""Batched log epochs: one ``run_update`` serves many recovery sessions.

The paper's deployment amortizes the distributed-log update by batching all
client insertions into one epoch every ~10 minutes.  :class:`EpochBatcher`
reproduces that rhythm: sessions ``submit`` their log insertion and block on
an :class:`EpochTicket`; each ``tick`` commits exactly one update epoch for
everything pending and fans the inclusion proofs back to every waiter.

Because inclusion proofs are digest-exact (Merkle BST), committing an epoch
invalidates the proofs of sessions still mid-share-phase.  Each served
session therefore holds an *epoch lease* until it reports its share phase
done (``release``); a tick waits for outstanding leases to drain — bounded
by ``lease_timeout`` so a crashed client cannot stall the log forever
(abandoned sessions fall back to client-side proof refresh).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, List, Optional, Set, Tuple

from repro.core.provider import ProviderError, ServiceProvider

#: Bound on the per-epoch history kept for observability/tests; aggregate
#: counters (epochs_run, sessions_served, ...) are exact forever.
_HISTORY_LIMIT = 4096


class ServiceTimeout(ProviderError):
    """A session timed out waiting for the service (no epoch tick arrived)."""


class EpochTicket:
    """One session's claim on the next epoch; resolves to (id, proof)."""

    def __init__(self) -> None:
        self._done = threading.Event()
        self._result: Optional[Tuple[bytes, object]] = None
        self._error: Optional[Exception] = None

    def resolve(self, result: Tuple[bytes, object]) -> None:
        self._result = result
        self._done.set()

    def fail(self, error: Exception) -> None:
        self._error = error
        self._done.set()

    def wait(self, timeout: Optional[float] = None) -> Tuple[bytes, object]:
        if not self._done.wait(timeout):
            raise ServiceTimeout(
                f"no log epoch committed within {timeout}s (is the ticker running?)"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result


class EpochBatcher:
    """Accumulates pending log insertions; commits one epoch per tick."""

    def __init__(
        self,
        provider: ServiceProvider,
        lease_timeout: float = 10.0,
        run_epoch: Optional[Callable[[], None]] = None,
    ) -> None:
        """``run_epoch`` commits one log update; defaults to the provider's
        installed runner.  The service passes a runner that routes every
        per-device protocol call through that device's FIFO worker."""
        self._provider = provider
        self._run_epoch = run_epoch or provider.run_log_update
        self._lease_timeout = lease_timeout
        self._lock = threading.Lock()
        self._drained = threading.Condition(self._lock)
        # (username, attempt, identifier, commitment, ticket) awaiting a tick
        self._waiters: List[Tuple[str, int, bytes, bytes, EpochTicket]] = []
        # (username, attempt) sessions served by the last epoch and still in
        # their share phase — their inclusion proofs pin the current digest.
        self._leases: Set[Tuple[str, int]] = set()
        self.epochs_run = 0
        self.entries_committed = 0
        self.sessions_served = 0
        self.lease_timeouts = 0
        self.epoch_failures = 0
        #: sessions served per epoch, newest-last (stress tests assert on it)
        self.epoch_sessions: Deque[int] = deque(maxlen=_HISTORY_LIMIT)
        #: digest after each committed epoch (proof-validity cross-checks)
        self.epoch_digests: Deque[bytes] = deque(maxlen=_HISTORY_LIMIT)

    @property
    def lock(self) -> threading.Lock:
        """Serializes log access; hold it for any out-of-band log reads."""
        return self._lock

    def submit(self, username: str, attempt: int, commitment: bytes) -> EpochTicket:
        """Queue one log insertion for the next epoch."""
        ticket = EpochTicket()
        with self._lock:
            try:
                identifier = self._provider.log_recovery_attempt(
                    username, attempt, commitment
                )
            except KeyError as exc:
                ticket.fail(ProviderError(str(exc)))
                return ticket
            self._waiters.append((username, attempt, identifier, commitment, ticket))
        return ticket

    def pending_sessions(self) -> int:
        with self._lock:
            return len(self._waiters)

    def tick(self) -> int:
        """Commit one update epoch; returns the number of sessions served.

        Waits (bounded) for the previous epoch's share phases to drain
        first, then runs exactly one ``run_update`` over everything pending
        and resolves every waiting ticket with its inclusion proof.
        """
        with self._drained:
            deadline = time.monotonic() + self._lease_timeout
            while self._leases:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    # Stragglers lose their lease; if still alive they will
                    # refresh their proofs through the provider.
                    self.lease_timeouts += 1
                    self._leases.clear()
                    break
                self._drained.wait(remaining)
            waiters, self._waiters = self._waiters, []
            if not waiters and not self._provider.log.pending:
                return 0
            try:
                self._run_epoch()
            except Exception as exc:
                # The epoch itself failed (quorum lost, bad chunk, worker
                # timeout).  Fail this batch's tickets but keep the batcher
                # alive: the ticker must survive to serve later sessions.
                self.epoch_failures += 1
                error = ProviderError(f"log update epoch failed: {exc!r}")
                error.__cause__ = exc
                for *_, ticket in waiters:
                    ticket.fail(error)
                return 0
            self.epochs_run += 1
            self.entries_committed += len(waiters)
            self.epoch_sessions.append(len(waiters))
            self.epoch_digests.append(self._provider.log.digest)
            for username, attempt, identifier, commitment, ticket in waiters:
                proof = self._provider.log.prove_includes(identifier, commitment)
                if proof is None:  # pragma: no cover - insert guarantees presence
                    ticket.fail(ProviderError("inclusion proof unavailable after epoch"))
                    continue
                self._leases.add((username, attempt))
                self.sessions_served += 1
                ticket.resolve((identifier, proof))
        return len(waiters)

    def release(self, username: str, attempt: int) -> None:
        """Drop a session's epoch lease (its share phase is over)."""
        with self._drained:
            self._leases.discard((username, attempt))
            if not self._leases:
                self._drained.notify_all()

    def outstanding_leases(self) -> int:
        with self._lock:
            return len(self._leases)
