"""SafetyPin's primary contribution: location-hiding encryption and the
backup/recovery protocol built on it (paper §3–§5, Figure 3, Figure 15)."""

_EXPORTS = {
    "SystemParams": ("repro.core.params", "SystemParams"),
    "LocationHidingEncryption": ("repro.core.lhe", "LocationHidingEncryption"),
    "LheCiphertext": ("repro.core.lhe", "LheCiphertext"),
    "Client": ("repro.core.client", "Client"),
    "RecoveryError": ("repro.core.client", "RecoveryError"),
    "ServiceProvider": ("repro.core.provider", "ServiceProvider"),
    "Deployment": ("repro.core.protocol", "Deployment"),
    "SaltProtectedClient": ("repro.core.saltprotect", "SaltProtectedClient"),
    "PinReuseVerdict": ("repro.core.saltprotect", "PinReuseVerdict"),
}

__all__ = list(_EXPORTS)


def __getattr__(name):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro.core' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
