"""Log-identifier naming for recovery attempts.

The log allows at most one value per identifier.  Logging attempts under the
bare username would give each user exactly one recovery ever (until garbage
collection); the paper's "slight modification" (§4.2) allows a fixed number
of attempts by numbering them.  We log attempt ``k`` of ``user`` under
``rec|user|k``; HSMs parse the identifier and enforce
``k < max_attempts_per_user``.

(The paper notes usernames in the log are privacy-sensitive and suggests
opaque device-install UUIDs; the mapping here is a naming layer, so swapping
in opaque IDs would not change any other component.)
"""

from __future__ import annotations

from typing import Tuple

_PREFIX = b"rec|"


def attempt_identifier(username: str, attempt: int) -> bytes:
    if attempt < 0:
        raise ValueError("attempt number must be non-negative")
    if "|" in username:
        raise ValueError("usernames may not contain '|'")
    return _PREFIX + username.encode("utf-8") + b"|" + str(attempt).encode("ascii")


def user_prefix(username: str) -> bytes:
    """Prefix matching every attempt identifier of ``username``."""
    return _PREFIX + username.encode("utf-8") + b"|"


def parse_attempt_identifier(identifier: bytes) -> Tuple[str, int]:
    """Inverse of :func:`attempt_identifier`; raises ValueError if malformed."""
    if not identifier.startswith(_PREFIX):
        raise ValueError("not a recovery-attempt identifier")
    body = identifier[len(_PREFIX) :]
    username_bytes, _, attempt_bytes = body.rpartition(b"|")
    if not username_bytes or not attempt_bytes.isdigit():
        raise ValueError("malformed recovery-attempt identifier")
    return username_bytes.decode("utf-8"), int(attempt_bytes)
