"""Location-hiding encryption (paper §5, Figure 15, Appendix A).

The client encrypts its backup so that decryption requires secret keys held
by a *hidden* cluster of ``n`` HSMs out of ``N``: the cluster is
``Hash(salt, pin)``, so an attacker who cannot guess the PIN does not know
which keys to steal.  Construction (Figure 15):

1. sample an AES transport key ``k`` and a random salt;
2. split ``k`` into ``t``-of-``n`` Shamir shares;
3. ``(i_1..i_n) = Hash(salt, pin)`` selects the cluster;
4. encrypt share ``j`` (prefixed with the username, binding ciphertexts to
   accounts) to ``pk_{i_j}`` with a key-private PKE;
5. output (salt, the n share ciphertexts, AE_k(msg)).

The PKE is pluggable: :class:`ElGamalPke` gives exactly the hashed-ElGamal
instantiation analysed in Appendix A; :class:`BfePke` (the deployment
default) swaps in Bloom-filter encryption so HSMs can puncture after
recovery (§7).  Both are key-private, which the location-hiding property
requires.

Domain separation follows Appendix A.4: the PKE context binds the username,
the salt, and a digest of the n cluster public keys.

Hot-path note: step 4 performs one PKE encryption per cluster member, and
every one of those rides the crypto fast path in ``repro.crypto.ec`` — the
fixed-base comb for each ephemeral ``g^r`` and the per-point cached window
for the (long-lived) HSM public keys — while reconstruction's Shamir
recombination batches its Lagrange-denominator inversions into a single
modular inversion (``repro.crypto.field.batch_inverse_mod``).
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.crypto.bfe import BfeCiphertext, BfePublicKey, BfeSecretKey, BloomFilterEncryption
from repro.crypto.ec import ECPoint
from repro.crypto.elgamal import ElGamalCiphertext, HashedElGamal
from repro.crypto.gcm import AuthenticationError, ae_decrypt, ae_encrypt
from repro.crypto.hashing import hash_to_indices, sha256
from repro.crypto.shamir import Share, ShamirSharer

TRANSPORT_KEY_LEN = 16
SALT_LEN = 16


class LheError(Exception):
    """Raised on malformed or unreconstructable LHE ciphertexts."""


# ---------------------------------------------------------------------------
# Pluggable key-private PKE
# ---------------------------------------------------------------------------
class ElGamalPke:
    """Figure 15's instantiation: hashed ElGamal over P-256."""

    name = "hashed-elgamal"

    def encrypt(self, public: ECPoint, plaintext: bytes, context: bytes, tag=None):
        return HashedElGamal.encrypt(public, plaintext, context=context)

    def decrypt(self, secret: int, ciphertext: ElGamalCiphertext, context: bytes) -> bytes:
        return HashedElGamal.decrypt(secret, ciphertext, context=context)

    def public_of(self, info) -> ECPoint:
        """Extract an encryption key from an HSM public-info record."""
        return info if isinstance(info, ECPoint) else info.public


class BfePke:
    """The deployment PKE: puncturable Bloom-filter encryption (§7).

    The puncture ``tag`` is derived from (username, salt) by the LHE layer,
    so every backup a user makes under one salt shares its Bloom slots: one
    recovery punctures the entire series (§8).
    """

    name = "bloom-filter-encryption"

    def encrypt(self, public: BfePublicKey, plaintext: bytes, context: bytes, tag=None):
        return BloomFilterEncryption.encrypt(public, plaintext, context=context, tag=tag)

    def decrypt(self, secret: BfeSecretKey, ciphertext: BfeCiphertext, context: bytes) -> bytes:
        return BloomFilterEncryption.decrypt(secret, ciphertext, context=context)

    def public_of(self, info) -> BfePublicKey:
        return info if isinstance(info, BfePublicKey) else info.bfe_public


# ---------------------------------------------------------------------------
# Ciphertext
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class LheCiphertext:
    """The recovery ciphertext the client uploads (§4.1).

    ``config_epoch`` identifies the HSM key epoch in service when the backup
    was created, so the provider can route recovery to the right keys after
    rotations (the paper's "configuration-epoch number").
    """

    salt: bytes
    username: str
    share_ciphertexts: Tuple[object, ...]
    payload: bytes
    threshold: int
    num_hsms: int
    config_epoch: int = 0

    @property
    def cluster_size(self) -> int:
        return len(self.share_ciphertexts)

    def ciphertext_hash(self) -> bytes:
        """Digest bound into the recovery commitment."""
        parts = [
            self.salt,
            self.username.encode("utf-8"),
            self.payload,
            self.threshold.to_bytes(4, "big"),
            self.num_hsms.to_bytes(4, "big"),
            self.config_epoch.to_bytes(4, "big"),
        ]
        for ct in self.share_ciphertexts:
            if isinstance(ct, BfeCiphertext):
                parts.append(ct.tag)
                parts.append(ct.ephemeral.to_bytes())
                parts.extend(ct.wrapped_keys)
                parts.append(ct.payload)
            elif isinstance(ct, ElGamalCiphertext):
                parts.append(ct.to_bytes())
            else:  # pragma: no cover - unknown PKE ciphertext type
                parts.append(repr(ct).encode())
        return sha256(b"lhe-ciphertext", *parts)

    def size_bytes(self) -> int:
        """Approximate wire size (paper: 16.5 KB at n=40)."""
        total = len(self.salt) + len(self.payload) + 12
        for ct in self.share_ciphertexts:
            total += len(ct)
        return total


def _share_plaintext(username: str, share: Share) -> bytes:
    """The paper prepends the username to each share before encryption."""
    user = username.encode("utf-8")
    return len(user).to_bytes(2, "big") + user + share.to_bytes()


def parse_share_plaintext(plaintext: bytes) -> Tuple[str, Share]:
    ulen = int.from_bytes(plaintext[:2], "big")
    username = plaintext[2 : 2 + ulen].decode("utf-8")
    return username, Share.from_bytes(plaintext[2 + ulen :])


def lhe_context(username: str, salt: bytes, cluster_key_digest: bytes) -> bytes:
    """Appendix A.4 domain separation: username || salt || cluster keys."""
    return sha256(b"lhe-context", username.encode("utf-8"), salt, cluster_key_digest)


# ---------------------------------------------------------------------------
# The scheme
# ---------------------------------------------------------------------------
class LocationHidingEncryption:
    """Figure 15's five routines, parameterized by (N, n, t, PKE)."""

    def __init__(
        self,
        num_hsms: int,
        cluster_size: int,
        threshold: int,
        pke=None,
    ) -> None:
        if not (1 <= threshold <= cluster_size <= num_hsms):
            raise ValueError("need 1 <= t <= n <= N")
        self.num_hsms = num_hsms
        self.cluster_size = cluster_size
        self.threshold = threshold
        self.pke = pke if pke is not None else BfePke()
        self._sharer = ShamirSharer(threshold, cluster_size)

    # -- Select -----------------------------------------------------------------
    def select(self, salt: bytes, pin: str) -> List[int]:
        """``Select(salt, pin) -> (i_1, ..., i_n)`` — the hidden cluster."""
        return hash_to_indices(salt, pin, self.num_hsms, self.cluster_size)

    # -- Encrypt ------------------------------------------------------------------
    def encrypt(
        self,
        public_keys: Sequence,
        pin: str,
        message: bytes,
        username: str = "",
        salt: Optional[bytes] = None,
        config_epoch: int = 0,
    ) -> LheCiphertext:
        """Encrypt ``message`` under the PIN-selected hidden cluster.

        ``public_keys`` is the full mpk — one entry per HSM, index-aligned.
        Runs entirely on the client: no HSM interaction (scalability).
        """
        if len(public_keys) != self.num_hsms:
            raise ValueError(
                f"expected {self.num_hsms} public keys, got {len(public_keys)}"
            )
        if salt is None:
            salt = secrets.token_bytes(SALT_LEN)
        transport_key = secrets.token_bytes(TRANSPORT_KEY_LEN)
        shares = self._sharer.share(transport_key)
        cluster = self.select(salt, pin)

        cluster_pks = [self.pke.public_of(public_keys[i]) for i in cluster]
        key_digest = self._cluster_key_digest(cluster_pks)
        context = lhe_context(username, salt, key_digest)
        # All of this user's backups under this salt share one puncture tag,
        # so recovering any of them revokes the whole series (§8).
        series_tag = sha256(b"safetypin-series", username.encode("utf-8"), salt)

        share_cts = []
        for share, pk in zip(shares, cluster_pks):
            share_cts.append(
                self.pke.encrypt(pk, _share_plaintext(username, share), context, tag=series_tag)
            )
        payload = ae_encrypt(transport_key, message, aad=context)
        return LheCiphertext(
            salt=salt,
            username=username,
            share_ciphertexts=tuple(share_cts),
            payload=payload,
            threshold=self.threshold,
            num_hsms=self.num_hsms,
            config_epoch=config_epoch,
        )

    def _cluster_key_digest(self, cluster_pks: Sequence) -> bytes:
        parts = []
        for pk in cluster_pks:
            if isinstance(pk, BfePublicKey):
                parts.append(pk.commitment)
            elif isinstance(pk, ECPoint):
                parts.append(pk.to_bytes())
            else:  # pragma: no cover
                parts.append(repr(pk).encode())
        return sha256(b"cluster-keys", *parts)

    def context_for(self, ciphertext: LheCiphertext, public_keys: Sequence, pin: str) -> bytes:
        cluster = self.select(ciphertext.salt, pin)
        cluster_pks = [self.pke.public_of(public_keys[i]) for i in cluster]
        return lhe_context(
            ciphertext.username, ciphertext.salt, self._cluster_key_digest(cluster_pks)
        )

    # -- Decrypt (single share; runs on one HSM) -------------------------------------
    def decrypt_share(
        self, secret, position: int, ciphertext: LheCiphertext, context: bytes
    ) -> Share:
        """``Decrypt(sk_{i_j}, i_j, ct) -> σ_j``: recover one Shamir share."""
        plaintext = self.pke.decrypt(
            secret, ciphertext.share_ciphertexts[position], context
        )
        username, share = parse_share_plaintext(plaintext)
        if username != ciphertext.username:
            raise LheError("share is bound to a different username")
        return share

    # -- Reconstruct -----------------------------------------------------------------
    def reconstruct(
        self, ciphertext: LheCiphertext, shares: Sequence[Optional[Share]], context: bytes
    ) -> bytes:
        """``Reconstruct(σ_1, ..., σ_n) -> msg`` (tolerates missing shares).

        Uses the AE tag of the payload as the share verifier, which also
        gives the robust majority-style behaviour of Figure 15's
        ``Reconstruct`` when some shares are corrupt.
        """
        available = [s for s in shares if s is not None]
        if len(available) < self.threshold:
            raise LheError(
                f"need {self.threshold} shares, have {len(available)}"
            )

        def verifier(candidate_key: bytes) -> bool:
            try:
                ae_decrypt(candidate_key, ciphertext.payload, aad=context)
                return True
            except AuthenticationError:
                return False

        try:
            transport_key = self._sharer.reconstruct(shares, TRANSPORT_KEY_LEN)
            if verifier(transport_key):
                return ae_decrypt(transport_key, ciphertext.payload, aad=context)
        except ValueError:
            pass
        # Some share was wrong (e.g. a malicious HSM): try robust subsets.
        transport_key = self._sharer.reconstruct_robust(
            list(shares), verifier, TRANSPORT_KEY_LEN
        )
        return ae_decrypt(transport_key, ciphertext.payload, aad=context)
