"""Deployment glue: one object wiring fleet, provider, and clients.

``Deployment`` is the top of the public API: it provisions the HSM fleet
(with their outsourced key stores hosted *at the provider*, as in the
paper), installs the log-update runner, hands authenticated copies of the
master public key to clients, and drives maintenance (key rotation, garbage
collection, fault injection).
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.core.client import Client
from repro.core.params import SystemParams
from repro.core.provider import ServiceProvider
from repro.hsm.fleet import HsmFleet
from repro.log.distributed import BlsMultiSig, EcdsaMultiSig, MultiSigScheme
from repro.log.membership import MembershipRegistry, MembershipVerifier
from repro.storage.blockstore import BlockStore
from repro.storage.journal import ProviderJournal, reconcile_open_intents


class Deployment:
    """A complete SafetyPin installation."""

    def __init__(
        self,
        params: SystemParams,
        fleet: HsmFleet,
        provider: ServiceProvider,
        restored: bool = False,
    ) -> None:
        """``restored=True`` (the :meth:`restore` path) skips genesis
        provisioning: the membership events and their certifying epoch are
        already in the restored log, so re-recording them would violate the
        log's write-once identifiers."""
        self.params = params
        self.fleet = fleet
        self.provider = provider
        self.clients: List[Client] = []
        # §6 third use: membership changes are logged before taking effect.
        self.membership = MembershipRegistry(provider.log)
        if restored:
            self.membership.resume_from(provider.log.dict.items())
        else:
            self.membership.record_fleet(fleet.master_public_key())
            provider.log.run_update(fleet.hsms)

    # -- construction ---------------------------------------------------------
    @staticmethod
    def create(
        params: SystemParams,
        multisig: Optional[MultiSigScheme] = None,
        rng: Optional[random.Random] = None,
        shards: Optional[int] = None,
        store: Optional[BlockStore] = None,
    ) -> "Deployment":
        """Provision a deployment: HSM keygen, signer directory, log wiring.

        ``multisig`` defaults to the concatenated-ECDSA scheme for speed;
        pass :class:`BlsMultiSig` for the paper's aggregate signatures.

        ``shards`` overrides ``params.log_shards``: ``shards >= 2``
        provisions a sharded log from genesis (devices track one digest
        per lane; see ``repro.log.sharded``), so no migration is needed.

        ``store`` opts into durability: the provider journals every escrow
        mutation, outsourced HSM block, and committed epoch to it, and
        :meth:`restore` rebuilds the whole deployment from the same store
        after a crash.
        """
        if shards is not None:
            import dataclasses

            params = dataclasses.replace(params, log_shards=shards)
        provider = ServiceProvider(params.log_config(), store=store)
        fleet = HsmFleet(
            num_hsms=params.num_hsms,
            bloom_params=params.bloom_params(),
            multisig_scheme=multisig or EcdsaMultiSig(),
            log_config=params.log_config(),
            rng=rng,
            store_factory=provider.storage_for_hsm,
        )
        provider.install_update_runner(lambda: provider.log.run_update(fleet.hsms))
        return Deployment(params=params, fleet=fleet, provider=provider)

    @staticmethod
    def restore(
        params: SystemParams,
        store: BlockStore,
        fleet: HsmFleet,
        shards: Optional[int] = None,
    ) -> "Deployment":
        """Rebuild a crashed deployment from its durable journal.

        Models the paper's restart reality: the provider *process* died
        (losing all memory), but the block store and the HSM fleet —
        separate trusted hardware whose keys and digests live inside their
        tamper boundaries — survived.  The journal is replayed (verifying
        the WAL chain, so corrupted / swapped / replayed blocks are
        detected, never silently restored), any epoch left half-committed
        by the crash is reconciled against the fleet's digests (completed
        if any committee device adopted it, rolled back otherwise — the
        epoch is atomic either way), each device is re-pointed at its
        re-hosted key blocks, and the service wiring is rebuilt.
        """
        if shards is not None:
            import dataclasses

            params = dataclasses.replace(params, log_shards=shards)
        journal = ProviderJournal(store)
        state = journal.replay_state()
        reconcile_open_intents(state, journal, fleet.hsms)
        provider = ServiceProvider.restore(params.log_config(), journal, state)
        for hsm in fleet.hsms:
            hsm.rehost_store(provider.storage_for_hsm(hsm.index))
        provider.install_update_runner(lambda: provider.log.run_update(fleet.hsms))
        return Deployment(params=params, fleet=fleet, provider=provider, restored=True)

    # -- clients -----------------------------------------------------------------
    def new_client(
        self, username: str, pin: Optional[str] = None, transport: str = "wire"
    ) -> Client:
        """Create a client holding the authentic mpk.

        ``pin`` is accepted for documentation symmetry but never stored; all
        PIN-consuming operations take the PIN explicitly.

        The client reaches HSMs only through the narrow ``Channel``
        interface and the provider only through the matching
        ``ProviderChannel``; the default ``"wire"`` transport serializes
        every request/reply on both legs through ``repro.core.wire`` (pass
        ``"direct"`` for the no-serialization reference path used by tests
        and micro-benchmarks).
        """
        from repro.service.channel import (
            direct_channels,
            provider_channel,
            wire_channels,
        )

        factory = (wire_channels if transport == "wire" else direct_channels)(self.fleet)
        client = Client(
            username=username,
            params=self.params,
            provider=provider_channel(self.provider, transport),
            channels=factory,
            mpk=self.fleet.master_public_key(),
        )
        self.clients.append(client)
        return client

    def recovery_service(self, shards: Optional[int] = None, **kwargs) -> "object":
        """A concurrent :class:`~repro.service.recovery.RecoveryService`
        front end over this deployment (batched epochs, per-HSM queues).

        ``shards`` selects how many parallel epoch lanes the service runs:
        it must match the deployment's log sharding, and if the log is
        still unsharded the deployment is migrated first (one-way; see
        :meth:`reshard_log`).  Provisioning with
        ``Deployment.create(params, shards=S)`` avoids the migration.
        """
        from repro.service.recovery import RecoveryService

        if shards is not None:
            current = getattr(self.provider.log, "num_shards", 1)
            if shards != current:
                if current != 1:
                    raise ValueError(
                        f"log already has {current} shards; resharding is one-way"
                    )
                if shards > 1:
                    self.reshard_log(shards)
        return RecoveryService(self, **kwargs)

    def reshard_log(self, shards: int) -> None:
        """Migrate the (unsharded) log onto ``shards`` parallel lanes.

        One-way provisioning step: every committed entry is re-routed to
        its hash shard and re-certified by the full fleet through genesis
        epochs (``ShardedLog.migrate``).  The pre-migration log is archived
        so :meth:`~repro.log.auditor.ExternalAuditor.audit_reshard` can
        verify completeness offline.
        """
        from repro.log.sharded import ShardedLog

        if self.provider.journal is not None:
            raise ValueError(
                "resharding a durable deployment is not supported: provision"
                " the final shard count up front (Deployment.create(shards=S,"
                " store=...))"
            )
        self.provider.log = ShardedLog.migrate(
            self.provider.log, shards, self.fleet.hsms
        )
        # The registry writes into whatever log the provider currently runs.
        self.membership.rebind(self.provider.log)

    # -- maintenance ----------------------------------------------------------------
    def run_log_update(self) -> None:
        self.provider.log.run_update(self.fleet.hsms)

    def rotate_keys_if_needed(self, threshold: Optional[float] = None) -> List[int]:
        """Rotate any HSM whose Bloom key is half-deleted (§9.1).

        Returns the indices rotated; clients must ``refresh_mpk`` afterwards
        (the paper's daily keying-material download).
        """
        threshold = threshold if threshold is not None else self.params.rotation_threshold
        rotated = []
        for hsm in self.fleet.online():
            if hsm.needs_rotation(threshold):
                info = hsm.rotate_keys(self.provider.storage_for_hsm(hsm.index))
                self.membership.record_rotation(info)
                rotated.append(hsm.index)
        if rotated:
            self.provider.log.run_update(self.fleet.hsms)
            mpk = self.fleet.master_public_key()
            for client in self.clients:
                client.refresh_mpk(mpk)
        return rotated

    def verify_published_keys(self) -> None:
        """Client-side mpk verification against the logged membership
        history (raises MembershipViolation on any substitution)."""
        MembershipVerifier.verify_mpk(
            self.fleet.master_public_key(), list(self.provider.log.dict.items())
        )

    def garbage_collect_log(self) -> None:
        self.provider.log.garbage_collect(self.fleet.hsms)

    # -- fault injection ----------------------------------------------------------------
    def fail_random_hsms(self, count: int, rng: Optional[random.Random] = None) -> List[int]:
        return self.fleet.fail_random(count, rng)

    def restart_all_hsms(self) -> None:
        self.fleet.restart_all()
