"""Wire formats: byte-level (de)serialization for protocol messages.

Everything that crosses a trust boundary in SafetyPin — recovery
ciphertexts uploaded to the provider, decrypt-share requests sent to HSMs,
HSM replies — is a byte string in deployment.  This module defines a
compact, self-describing TLV-ish encoding with explicit versioning so the
formats can evolve.

All decoders are *strict*: trailing bytes, truncation, bad versions, and
out-of-range lengths raise :class:`WireFormatError` rather than producing
partially-parsed objects (these inputs arrive from untrusted parties).
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from repro.core.lhe import LheCiphertext
from repro.crypto.bfe import BfeCiphertext
from repro.crypto.commit import CommitmentOpening
from repro.crypto.ec import ECPoint
from repro.crypto.elgamal import ElGamalCiphertext
from repro.crypto.merkle import MerkleProof
from repro.log.authdict import InclusionProof, PathStep
from repro.log.sharded import ShardedInclusionProof

WIRE_VERSION = 1


class WireFormatError(Exception):
    """Malformed or truncated wire data."""


class _Reader:
    def __init__(self, data: bytes) -> None:
        self._data = data
        self._offset = 0

    def take(self, count: int) -> bytes:
        if count < 0 or self._offset + count > len(self._data):
            raise WireFormatError("truncated message")
        out = self._data[self._offset : self._offset + count]
        self._offset += count
        return out

    def u8(self) -> int:
        return self.take(1)[0]

    def u32(self) -> int:
        return struct.unpack(">I", self.take(4))[0]

    def blob(self) -> bytes:
        return self.take(self.u32())

    def text(self) -> str:
        try:
            return self.blob().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireFormatError("invalid UTF-8") from exc

    def finish(self) -> None:
        if self._offset != len(self._data):
            raise WireFormatError(
                f"{len(self._data) - self._offset} trailing bytes"
            )


def _u32(value: int) -> bytes:
    if not (0 <= value < 1 << 32):
        raise WireFormatError("u32 out of range")
    return struct.pack(">I", value)


def _blob(data: bytes) -> bytes:
    return _u32(len(data)) + data


def _text(value: str) -> bytes:
    return _blob(value.encode("utf-8"))


# ---------------------------------------------------------------------------
# BFE ciphertexts
# ---------------------------------------------------------------------------
def encode_bfe_ciphertext(ct: BfeCiphertext) -> bytes:
    """Serialize a Bloom-filter-encryption ciphertext."""
    parts = [
        _blob(ct.tag),
        _blob(ct.ephemeral.to_bytes()),
        _u32(len(ct.wrapped_keys)),
    ]
    parts.extend(_blob(w) for w in ct.wrapped_keys)
    parts.append(_blob(ct.payload))
    return b"".join(parts)


def _decode_bfe_ciphertext(reader: _Reader) -> BfeCiphertext:
    tag = reader.blob()
    try:
        ephemeral = ECPoint.from_bytes(reader.blob())
    except ValueError as exc:
        raise WireFormatError(str(exc)) from exc
    count = reader.u32()
    if count > 4096:
        raise WireFormatError("implausible wrapped-key count")
    wrapped = tuple(reader.blob() for _ in range(count))
    payload = reader.blob()
    return BfeCiphertext(tag=tag, ephemeral=ephemeral, wrapped_keys=wrapped, payload=payload)


def decode_bfe_ciphertext(data: bytes) -> BfeCiphertext:
    """Strictly decode a BFE ciphertext (raises on any malformation)."""
    reader = _Reader(data)
    ct = _decode_bfe_ciphertext(reader)
    reader.finish()
    return ct


# ---------------------------------------------------------------------------
# Recovery (LHE) ciphertexts
# ---------------------------------------------------------------------------
def encode_recovery_ciphertext(ct: LheCiphertext) -> bytes:
    """Serialize the client's uploaded recovery ciphertext (§4.1)."""
    parts = [
        bytes([WIRE_VERSION]),
        _blob(ct.salt),
        _text(ct.username),
        _u32(ct.threshold),
        _u32(ct.num_hsms),
        _u32(ct.config_epoch),
        _u32(len(ct.share_ciphertexts)),
    ]
    for share_ct in ct.share_ciphertexts:
        if isinstance(share_ct, BfeCiphertext):
            parts.append(b"\x01" + encode_bfe_ciphertext(share_ct))
        elif isinstance(share_ct, ElGamalCiphertext):
            parts.append(b"\x02" + _blob(share_ct.to_bytes()))
        else:
            raise WireFormatError(f"unencodable share ciphertext {type(share_ct)}")
    parts.append(_blob(ct.payload))
    return b"".join(parts)


def decode_recovery_ciphertext(data: bytes) -> LheCiphertext:
    """Strictly decode a recovery ciphertext uploaded by a client."""
    reader = _Reader(data)
    version = reader.u8()
    if version != WIRE_VERSION:
        raise WireFormatError(f"unsupported wire version {version}")
    salt = reader.blob()
    username = reader.text()
    threshold = reader.u32()
    num_hsms = reader.u32()
    config_epoch = reader.u32()
    count = reader.u32()
    if count > 4096:
        raise WireFormatError("implausible share count")
    shares: List[object] = []
    for _ in range(count):
        kind = reader.u8()
        if kind == 1:
            shares.append(_decode_bfe_ciphertext_framed(reader))
        elif kind == 2:
            try:
                shares.append(ElGamalCiphertext.from_bytes(reader.blob()))
            except ValueError as exc:
                raise WireFormatError(str(exc)) from exc
        else:
            raise WireFormatError(f"unknown share-ciphertext kind {kind}")
    payload = reader.blob()
    reader.finish()
    return LheCiphertext(
        salt=salt,
        username=username,
        share_ciphertexts=tuple(shares),
        payload=payload,
        threshold=threshold,
        num_hsms=num_hsms,
        config_epoch=config_epoch,
    )


def _decode_bfe_ciphertext_framed(reader: _Reader) -> BfeCiphertext:
    return _decode_bfe_ciphertext(reader)


# ---------------------------------------------------------------------------
# Decrypt-share replies (HSM -> client, step Ð of Figure 3)
# ---------------------------------------------------------------------------
#: The HSM decrypted and punctured; the payload is an ElGamal ciphertext.
REPLY_OK = 0
#: The HSM refused the request (bad proof, wrong cluster, policy violation).
REPLY_REFUSED = 1
#: The share was already recovered; the Bloom-filter key is punctured.
REPLY_PUNCTURED = 2
#: The device has fail-stopped (benign hardware failure).
REPLY_UNAVAILABLE = 3
#: The inclusion proof is stale (a later epoch advanced the digest);
#: the client should refresh its proof and retry.
REPLY_STALE_PROOF = 4

_REPLY_ERROR_STATUSES = (
    REPLY_REFUSED,
    REPLY_PUNCTURED,
    REPLY_UNAVAILABLE,
    REPLY_STALE_PROOF,
)


def encode_decrypt_reply(reply: ElGamalCiphertext) -> bytes:
    """Serialize a successful decrypt-share reply."""
    return bytes([WIRE_VERSION, REPLY_OK]) + _blob(reply.to_bytes())


def encode_decrypt_error(status: int, message: str) -> bytes:
    """Serialize a refusal/puncture/unavailable outcome as wire bytes.

    Errors must cross the transport as data, not as shared Python exception
    objects: the client re-raises from the status code alone.
    """
    if status not in _REPLY_ERROR_STATUSES:
        raise WireFormatError(f"not an error reply status: {status}")
    return bytes([WIRE_VERSION, status]) + _text(message)


def decode_decrypt_reply(data: bytes):
    """Decode a reply into ``(status, payload)``.

    ``payload`` is an :class:`ElGamalCiphertext` for :data:`REPLY_OK` and a
    human-readable message string for the error statuses.
    """
    reader = _Reader(data)
    version = reader.u8()
    if version != WIRE_VERSION:
        raise WireFormatError(f"unsupported wire version {version}")
    status = reader.u8()
    if status == REPLY_OK:
        try:
            payload: object = ElGamalCiphertext.from_bytes(reader.blob())
        except ValueError as exc:
            raise WireFormatError(str(exc)) from exc
    elif status in _REPLY_ERROR_STATUSES:
        payload = reader.text()
    else:
        raise WireFormatError(f"unknown reply status {status}")
    reader.finish()
    return status, payload


# ---------------------------------------------------------------------------
# Log inclusion proofs
# ---------------------------------------------------------------------------
#: Proof-kind tags: a plain BST proof against a single log digest, or a
#: sharded proof carrying the shard routing and the Merkle path from the
#: shard digest to the cross-shard root.
PROOF_PLAIN = 1
PROOF_SHARDED = 2


def _encode_plain_proof(proof: InclusionProof) -> bytes:
    parts = [_u32(len(proof.steps))]
    for step in proof.steps:
        parts.append(_blob(step.idh))
        parts.append(_blob(step.value))
        parts.append(_blob(step.other))
    parts.append(_blob(proof.left))
    parts.append(_blob(proof.right))
    return b"".join(parts)


def _decode_plain_proof(reader: _Reader) -> InclusionProof:
    count = reader.u32()
    if count > 4096:
        raise WireFormatError("implausible proof depth")
    steps = tuple(
        PathStep(idh=reader.blob(), value=reader.blob(), other=reader.blob())
        for _ in range(count)
    )
    left = reader.blob()
    right = reader.blob()
    return InclusionProof(steps=steps, left=left, right=right)


def encode_inclusion_proof(proof) -> bytes:
    """Serialize a plain or sharded inclusion proof (tagged by kind)."""
    if isinstance(proof, ShardedInclusionProof):
        return b"".join(
            [
                bytes([PROOF_SHARDED]),
                _u32(proof.shard),
                _u32(proof.num_shards),
                _blob(proof.shard_digest),
                _blob(proof.shard_path.to_bytes()),
                _encode_plain_proof(proof.inclusion),
            ]
        )
    return bytes([PROOF_PLAIN]) + _encode_plain_proof(proof)


def decode_inclusion_proof(data: bytes):
    """Decode a proof; returns :class:`InclusionProof` or
    :class:`ShardedInclusionProof` according to the kind tag."""
    reader = _Reader(data)
    kind = reader.u8()
    if kind == PROOF_PLAIN:
        proof: object = _decode_plain_proof(reader)
    elif kind == PROOF_SHARDED:
        shard = reader.u32()
        num_shards = reader.u32()
        if not (2 <= num_shards <= 4096):
            raise WireFormatError("implausible shard count")
        if shard >= num_shards:
            raise WireFormatError("shard index out of range")
        shard_digest = reader.blob()
        path_bytes = reader.blob()
        try:
            shard_path = MerkleProof.from_bytes(path_bytes)
        except ValueError as exc:
            raise WireFormatError(str(exc)) from exc
        if shard_path.to_bytes() != path_bytes:
            raise WireFormatError("non-canonical shard path")
        proof = ShardedInclusionProof(
            shard=shard,
            num_shards=num_shards,
            shard_digest=shard_digest,
            shard_path=shard_path,
            inclusion=_decode_plain_proof(reader),
        )
    else:
        raise WireFormatError(f"unknown inclusion-proof kind {kind}")
    reader.finish()
    return proof


# ---------------------------------------------------------------------------
# Decrypt-share requests (client -> HSM, step Ï of Figure 3)
# ---------------------------------------------------------------------------
def encode_decrypt_request(request) -> bytes:
    """Serialize a client's decrypt-share request to one HSM."""
    from repro.hsm.device import DecryptShareRequest  # avoid import cycle

    assert isinstance(request, DecryptShareRequest)
    return b"".join(
        [
            bytes([WIRE_VERSION]),
            _text(request.username),
            _blob(request.log_identifier),
            _blob(request.commitment),
            _blob(request.opening.to_bytes()),
            _blob(encode_inclusion_proof(request.inclusion_proof)),
            _blob(encode_bfe_ciphertext(request.share_ciphertext)),
            _blob(request.context),
            _blob(request.response_key.to_bytes()),
        ]
    )


def decode_decrypt_request(data: bytes):
    """Strictly decode a decrypt-share request (device side)."""
    from repro.hsm.device import DecryptShareRequest

    reader = _Reader(data)
    version = reader.u8()
    if version != WIRE_VERSION:
        raise WireFormatError(f"unsupported wire version {version}")
    username = reader.text()
    log_identifier = reader.blob()
    commitment = reader.blob()
    try:
        opening = CommitmentOpening.from_bytes(reader.blob())
    except ValueError as exc:
        raise WireFormatError(str(exc)) from exc
    proof = decode_inclusion_proof(reader.blob())
    share_ct = decode_bfe_ciphertext(reader.blob())
    context = reader.blob()
    try:
        response_key = ECPoint.from_bytes(reader.blob())
    except ValueError as exc:
        raise WireFormatError(str(exc)) from exc
    reader.finish()
    return DecryptShareRequest(
        username=username,
        log_identifier=log_identifier,
        commitment=commitment,
        opening=opening,
        inclusion_proof=proof,
        share_ciphertext=share_ct,
        context=context,
        response_key=response_key,
    )


# ---------------------------------------------------------------------------
# Provider RPC frames (client -> provider -> client)
# ---------------------------------------------------------------------------
# Every provider interaction crosses the untrusted operator's network, so
# the whole surface is framed: ``[version u8][op u8][body]`` requests and
# ``[version u8][kind u8][body]`` replies, with bodies described by the
# per-op field schemas below.  Inclusion proofs ride the same tagged
# PROOF_PLAIN/PROOF_SHARDED envelope as the client->HSM leg, and failures
# travel as typed PROV_REPLY_ERROR frames — a provider can answer with an
# error *status*, never with a live Python exception.

#: Request op tags, one per method of the provider surface.
PROV_UPLOAD_BACKUP = 1
PROV_FETCH_BACKUP = 2
PROV_BACKUP_COUNT = 3
PROV_UPLOAD_INCREMENTAL = 4
PROV_FETCH_INCREMENTALS = 5
PROV_NEXT_ATTEMPT = 6
PROV_RESERVE_ATTEMPT = 7
PROV_LOG_ATTEMPT = 8
PROV_LOG_AND_PROVE = 9
PROV_PROVE_INCLUSION = 10
PROV_SHARE_PHASE_DONE = 11
PROV_STORE_REPLY = 12
PROV_FETCH_REPLIES = 13
PROV_LIST_ATTEMPTS = 14

#: Reply kind tags.
PROV_REPLY_ACK = 1
PROV_REPLY_COUNT = 2
PROV_REPLY_BACKUP = 3
PROV_REPLY_BLOBS = 4
PROV_REPLY_PROOF = 5
PROV_REPLY_PROVEN = 6
PROV_REPLY_ENTRIES = 7
PROV_REPLY_LOGGED = 8
PROV_REPLY_ERROR = 9

#: Error statuses carried by :data:`PROV_REPLY_ERROR` frames.
PROV_ERR_PROVIDER = 1      # the provider refused/failed (ProviderError)
PROV_ERR_BAD_REQUEST = 2   # the provider could not decode the request
PROV_ERR_TIMEOUT = 3       # the epoch service timed out (ServiceTimeout)

_PROVIDER_ERROR_STATUSES = (
    PROV_ERR_PROVIDER,
    PROV_ERR_BAD_REQUEST,
    PROV_ERR_TIMEOUT,
)

#: Bound on list-valued reply fields (blobs, log entries) — far above any
#: honest reply, low enough that a hostile length prefix cannot OOM us.
_MAX_LIST_ITEMS = 65536


def _i32(value: int) -> bytes:
    if not (-(1 << 31) <= value < 1 << 31):
        raise WireFormatError("i32 out of range")
    return struct.pack(">i", value)


def _encode_opt_proof(proof) -> bytes:
    if proof is None:
        return b"\x00"
    return b"\x01" + _blob(encode_inclusion_proof(proof))


def _decode_opt_proof(reader: _Reader):
    flag = reader.u8()
    if flag == 0:
        return None
    if flag != 1:
        raise WireFormatError(f"bad optional-proof flag {flag}")
    return decode_inclusion_proof(reader.blob())


def _encode_blob_list(blobs) -> bytes:
    return _u32(len(blobs)) + b"".join(_blob(b) for b in blobs)


def _decode_blob_list(reader: _Reader) -> List[bytes]:
    count = reader.u32()
    if count > _MAX_LIST_ITEMS:
        raise WireFormatError("implausible blob count")
    return [reader.blob() for _ in range(count)]


def _encode_entry_list(entries) -> bytes:
    parts = [_u32(len(entries))]
    for identifier, value in entries:
        parts.append(_blob(identifier))
        parts.append(_blob(value))
    return b"".join(parts)


def _decode_entry_list(reader: _Reader) -> List[Tuple[bytes, bytes]]:
    count = reader.u32()
    if count > _MAX_LIST_ITEMS:
        raise WireFormatError("implausible entry count")
    return [(reader.blob(), reader.blob()) for _ in range(count)]


def _encode_err_status(status: int) -> bytes:
    if status not in _PROVIDER_ERROR_STATUSES:
        raise WireFormatError(f"unknown provider error status {status}")
    return bytes([status])


def _decode_err_status(reader: _Reader) -> int:
    status = reader.u8()
    if status not in _PROVIDER_ERROR_STATUSES:
        raise WireFormatError(f"unknown provider error status {status}")
    return status


_FIELD_ENCODERS = {
    "text": _text,
    "blob": _blob,
    "u32": _u32,
    "i32": _i32,
    "recovery_ct": lambda ct: _blob(encode_recovery_ciphertext(ct)),
    "proof": lambda proof: _blob(encode_inclusion_proof(proof)),
    "opt_proof": _encode_opt_proof,
    "blobs": _encode_blob_list,
    "entries": _encode_entry_list,
    "err_status": _encode_err_status,
}

_FIELD_DECODERS = {
    "text": _Reader.text,
    "blob": _Reader.blob,
    "u32": _Reader.u32,
    "i32": lambda reader: struct.unpack(">i", reader.take(4))[0],
    "recovery_ct": lambda reader: decode_recovery_ciphertext(reader.blob()),
    "proof": lambda reader: decode_inclusion_proof(reader.blob()),
    "opt_proof": _decode_opt_proof,
    "blobs": _decode_blob_list,
    "entries": _decode_entry_list,
    "err_status": _decode_err_status,
}

#: Body schema per request op: ordered (field name, field kind) pairs.
PROVIDER_REQUEST_SCHEMAS: Dict[int, Tuple[Tuple[str, str], ...]] = {
    PROV_UPLOAD_BACKUP: (("username", "text"), ("ciphertext", "recovery_ct")),
    PROV_FETCH_BACKUP: (("username", "text"), ("index", "i32")),
    PROV_BACKUP_COUNT: (("username", "text"),),
    PROV_UPLOAD_INCREMENTAL: (("username", "text"), ("blob", "blob")),
    PROV_FETCH_INCREMENTALS: (("username", "text"),),
    PROV_NEXT_ATTEMPT: (("username", "text"),),
    PROV_RESERVE_ATTEMPT: (("username", "text"),),
    PROV_LOG_ATTEMPT: (
        ("username", "text"),
        ("attempt", "u32"),
        ("commitment", "blob"),
    ),
    PROV_LOG_AND_PROVE: (
        ("username", "text"),
        ("attempt", "u32"),
        ("commitment", "blob"),
    ),
    PROV_PROVE_INCLUSION: (("identifier", "blob"), ("value", "blob")),
    PROV_SHARE_PHASE_DONE: (("username", "text"), ("attempt", "u32")),
    PROV_STORE_REPLY: (
        ("username", "text"),
        ("attempt", "u32"),
        ("reply", "blob"),
    ),
    PROV_FETCH_REPLIES: (("username", "text"), ("attempt", "u32")),
    PROV_LIST_ATTEMPTS: (("username", "text"),),
}

#: Body schema per reply kind.
PROVIDER_REPLY_SCHEMAS: Dict[int, Tuple[Tuple[str, str], ...]] = {
    PROV_REPLY_ACK: (),
    PROV_REPLY_COUNT: (("value", "u32"),),
    PROV_REPLY_BACKUP: (("ciphertext", "recovery_ct"),),
    PROV_REPLY_BLOBS: (("blobs", "blobs"),),
    PROV_REPLY_PROOF: (("proof", "opt_proof"),),
    PROV_REPLY_PROVEN: (("identifier", "blob"), ("proof", "proof")),
    PROV_REPLY_ENTRIES: (("entries", "entries"),),
    PROV_REPLY_LOGGED: (("identifier", "blob"),),
    PROV_REPLY_ERROR: (("status", "err_status"), ("message", "text")),
}


def _encode_framed(tag: int, fields: Dict, schemas: Dict, what: str) -> bytes:
    schema = schemas.get(tag)
    if schema is None:
        raise WireFormatError(f"unknown {what} tag {tag}")
    if set(fields) != {name for name, _ in schema}:
        raise WireFormatError(
            f"{what} {tag} fields {sorted(fields)} do not match its schema"
        )
    parts = [bytes([WIRE_VERSION, tag])]
    for name, kind in schema:
        parts.append(_FIELD_ENCODERS[kind](fields[name]))
    return b"".join(parts)


def _decode_framed(data: bytes, schemas: Dict, what: str):
    reader = _Reader(data)
    version = reader.u8()
    if version != WIRE_VERSION:
        raise WireFormatError(f"unsupported wire version {version}")
    tag = reader.u8()
    schema = schemas.get(tag)
    if schema is None:
        raise WireFormatError(f"unknown {what} tag {tag}")
    fields = {name: _FIELD_DECODERS[kind](reader) for name, kind in schema}
    reader.finish()
    return tag, fields


def encode_provider_request(op: int, fields: Dict) -> bytes:
    """Serialize one provider RPC request (tagged by ``op``)."""
    return _encode_framed(op, fields, PROVIDER_REQUEST_SCHEMAS, "provider request")


def decode_provider_request(data: bytes):
    """Strictly decode a provider request into ``(op, fields)``."""
    return _decode_framed(data, PROVIDER_REQUEST_SCHEMAS, "provider request")


def encode_provider_reply(kind: int, fields: Dict) -> bytes:
    """Serialize one provider RPC reply (tagged by ``kind``)."""
    return _encode_framed(kind, fields, PROVIDER_REPLY_SCHEMAS, "provider reply")


def encode_provider_error(status: int, message: str) -> bytes:
    """Serialize a typed provider failure as a :data:`PROV_REPLY_ERROR` frame."""
    return encode_provider_reply(
        PROV_REPLY_ERROR, {"status": status, "message": message}
    )


def decode_provider_reply(data: bytes):
    """Strictly decode a provider reply into ``(kind, fields)``."""
    return _decode_framed(data, PROVIDER_REPLY_SCHEMAS, "provider reply")
