"""System parameters (paper §3 "Setting parameters" and §9.2).

The paper's deployment parameters:

- fleet size ``N = 3,100`` HSMs (sized for one billion users at one recovery
  per user per year),
- cluster size ``n = 40`` (dictated by Theorem 10 given N and 6-digit PINs),
- recovery threshold ``t = n/2`` (Theorem 9 with ``f_live = 1/64``),
- compromise tolerance ``f_secret = 1/16`` (≈194 HSMs),
- puncturable keys sized for ``2^20`` punctures,
- log updates every 10 minutes with ``C = λ = 128`` audited chunks per HSM.

Tests shrink everything (see :meth:`SystemParams.for_testing`) but run the
same code paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from repro.crypto.bloom import BloomParams
from repro.log.distributed import LogConfig


@dataclass(frozen=True)
class SystemParams:
    """Everything that configures a SafetyPin deployment."""

    num_hsms: int
    cluster_size: int
    threshold: int
    pin_length: int = 6  # decimal digits; |P| = 10^pin_length
    f_secret: Fraction = Fraction(1, 16)
    f_live: Fraction = Fraction(1, 64)
    max_punctures: int = 1 << 20
    bloom_failure_exponent: int = 16
    audit_count: int = 128
    quorum_fraction: float = 0.9
    max_attempts_per_user: int = 5
    max_garbage_collections: int = 24
    rotation_threshold: float = 0.5  # rotate once half the slot keys are gone
    use_paper_bloom: bool = False  # 64 MB / 2^21-slot keys (§9.1) vs generic sizing
    log_shards: int = 1  # >1 partitions the log into parallel epoch lanes

    def __post_init__(self) -> None:
        if not (1 <= self.threshold <= self.cluster_size <= self.num_hsms):
            raise ValueError("need 1 <= t <= n <= N")
        if self.pin_length < 1:
            raise ValueError("pin_length must be >= 1")
        if not (0 < self.f_secret < 1 and 0 < self.f_live < 1):
            raise ValueError("f_secret and f_live must be in (0, 1)")
        if self.log_shards < 1:
            raise ValueError("log_shards must be >= 1")
        if self.log_shards > self.num_hsms:
            raise ValueError(
                "log_shards cannot exceed num_hsms (shard committees would be empty)"
            )

    # -- derived quantities ---------------------------------------------------
    @property
    def pin_space_size(self) -> int:
        return 10**self.pin_length

    @property
    def tolerated_compromises(self) -> int:
        """The paper's N_evil: how many stolen HSMs the deployment survives."""
        return int(self.f_secret * self.num_hsms)

    @property
    def tolerated_failures(self) -> int:
        return int(self.f_live * self.num_hsms)

    def bloom_params(self) -> BloomParams:
        if self.use_paper_bloom:
            return BloomParams.paper_deployment()
        return BloomParams.for_punctures(self.max_punctures, self.bloom_failure_exponent)

    def log_config(self) -> LogConfig:
        return LogConfig(
            audit_count=self.audit_count,
            quorum_fraction=self.quorum_fraction,
            max_garbage_collections=self.max_garbage_collections,
            max_attempts_per_user=self.max_attempts_per_user,
            num_shards=self.log_shards,
        )

    def validate_pin(self, pin: str) -> None:
        if len(pin) != self.pin_length or not pin.isdigit():
            raise ValueError(
                f"PIN must be exactly {self.pin_length} decimal digits"
            )

    # -- presets ------------------------------------------------------------------
    @staticmethod
    def for_paper() -> "SystemParams":
        """The evaluated deployment: N=3,100, n=40, t=20, 6-digit PINs,
        64 MB puncturable keys rotated every 2^18 decryptions."""
        return SystemParams(
            num_hsms=3100, cluster_size=40, threshold=20, use_paper_bloom=True
        )

    @staticmethod
    def for_testing(
        num_hsms: int = 16,
        cluster_size: int = 4,
        threshold: Optional[int] = None,
        pin_length: int = 4,
        max_punctures: int = 8,
        bloom_failure_exponent: int = 4,
        audit_count: int = 3,
        quorum_fraction: float = 0.75,
        log_shards: int = 1,
    ) -> "SystemParams":
        """Scaled-down parameters that exercise every code path quickly."""
        return SystemParams(
            num_hsms=num_hsms,
            cluster_size=cluster_size,
            threshold=threshold if threshold is not None else max(1, cluster_size // 2),
            pin_length=pin_length,
            max_punctures=max_punctures,
            bloom_failure_exponent=bloom_failure_exponent,
            audit_count=audit_count,
            quorum_fraction=quorum_fraction,
            log_shards=log_shards,
        )
