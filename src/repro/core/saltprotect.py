"""Salt protection and safe PIN re-use (paper §6.3 and §8).

The paper's limitation: during recovery an observer who controls the data
center sees which HSMs the client contacts, and with the (provider-stored)
salt can mount an offline brute-force attack on the PIN — bad, because
users re-use PINs.  The proposed mitigation, described in §6.3/§8 but
"not yet implemented" by the authors, is implemented here:

- Instead of storing the salt in the clear, the client stores it
  **secret-shared under a second layer of location-hiding encryption with a
  null PIN**.  The salt cluster ``S_salt`` is selected by a salt-selection
  salt (public), not by the PIN, so anyone *can* fetch the salt — but doing
  so is a logged, punctured recovery: it consumes the salt.
- During recovery the client first recovers the salt (destroying it), then
  runs the normal PIN recovery.
- **Safe re-use detection**: afterwards, the device inspects the public log.
  If the only salt-fetch ever logged is its own, nobody else ever held the
  salt, so no offline PIN attack was possible and the user may safely keep
  her PIN.  If a foreign fetch appears, the device tells the user to pick a
  new PIN.

An attacker can still fetch the salt (it is null-PIN-protected), but only
by leaving an indelible log entry and destroying the salt — turning a
silent offline attack into a loud online one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.client import Client

def null_pin(params) -> str:
    """The fixed, public "PIN" protecting salt shares (all zeros)."""
    return "0" * params.pin_length

#: Username suffix for the hidden salt account.
_SALT_SUFFIX = "!salt"


@dataclass(frozen=True)
class PinReuseVerdict:
    """Outcome of the §6.3 safe-re-use check."""

    safe_to_reuse: bool
    own_fetches: int
    foreign_fetches: int
    reason: str


class SaltProtectedClient:
    """Wraps a :class:`Client` with the salt-protection layer.

    The wrapped client's PIN-selected backup uses a salt that is never
    stored in the clear at the provider; only its LHE ciphertext is.
    """

    def __init__(self, client: Client) -> None:
        self.client = client
        self._salt_username = client.username + _SALT_SUFFIX

    # -- backup ---------------------------------------------------------------
    def backup(self, message: bytes, pin: str) -> int:
        """Backup with a salt-protected recovery ciphertext.

        The main ciphertext is built as usual (its salt rides inside it for
        cluster selection), but a copy of the salt is *also* stored under
        null-PIN LHE so the provider-side record alone does not reveal the
        value needed for an offline PIN attack.  In a full deployment the
        main ciphertext would carry only a handle; we keep the paper's
        simpler structure and use the protected copy for the re-use check.
        """
        index = self.client.backup(message, pin)
        ciphertext = self.client.provider.fetch_backup(self.client.username, index)
        # Null-PIN LHE over the salt, under the hidden salt account.
        salt_lhe = self.client.lhe
        protected = salt_lhe.encrypt(
            self.client.mpk,
            null_pin(self.client.params),
            ciphertext.salt,
            username=self._salt_username,
        )
        self.client.provider.upload_backup(self._salt_username, protected)
        return index

    # -- recovery ------------------------------------------------------------------
    def fetch_salt(self) -> bytes:
        """Recover (and thereby destroy) the protected salt.

        This is what an *attacker* would also have to do before an offline
        PIN attack — and it is logged under the salt account forever.
        """
        session = self.client.begin_recovery(
            null_pin(self.client.params),
            backup_index=-1,
            backup_recovery_key=False,
            username=self._salt_username,
        )
        self.client.request_shares(session, null_pin(self.client.params))
        return self.client.finish_recovery(session)

    def recover(self, pin: str, backup_index: int = -1) -> bytes:
        """Salt fetch (logged, destructive) followed by normal recovery."""
        self.fetch_salt()
        return self.client.recover(pin, backup_index=backup_index)

    # -- §6.3: safe PIN re-use detection ----------------------------------------------
    def pin_reuse_verdict(self, own_fetches_expected: int = 1) -> PinReuseVerdict:
        """Decide whether the user may safely keep her PIN.

        Counts salt-fetch entries in the public log.  ``own_fetches_expected``
        is how many fetches this device performed itself (one per recovery).
        """
        attempts = self.client.provider.recovery_attempts_for(self._salt_username)
        total = len(attempts)
        foreign = max(0, total - own_fetches_expected)
        if foreign == 0:
            return PinReuseVerdict(
                safe_to_reuse=True,
                own_fetches=total,
                foreign_fetches=0,
                reason="no foreign salt fetches are logged; the salt never "
                "left this device's recoveries, so no offline PIN attack "
                "was possible",
            )
        return PinReuseVerdict(
            safe_to_reuse=False,
            own_fetches=own_fetches_expected,
            foreign_fetches=foreign,
            reason=f"{foreign} salt fetch(es) logged by other parties; "
            "assume the salted PIN hash is under offline attack and choose "
            "a new PIN",
        )

    def salt_fetch_log(self) -> List[Tuple[bytes, bytes]]:
        return self.client.provider.recovery_attempts_for(self._salt_username)
