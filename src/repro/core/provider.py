"""The service provider (paper §2).

The provider owns everything *outside* the HSMs' tamper boundaries: bulk
ciphertext storage, the log state, the outsourced Bloom-filter key blocks,
and the network between clients and HSMs.  It is **untrusted** — every
security property must hold even when this component misbehaves, which is
why the adversary classes in ``repro.adversary`` are provider subclasses.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.identifiers import attempt_identifier, parse_attempt_identifier, user_prefix
from repro.core.lhe import LheCiphertext
from repro.log.authdict import AuthenticatedDictionary, InclusionProof
from repro.log.distributed import DistributedLog, LogConfig
from repro.log.sharded import ShardedLog
from repro.storage.blockstore import BlockStore, InMemoryBlockStore
from repro.storage.journal import (
    JournaledBlockStore,
    ProviderJournal,
    RestoredState,
    StoredTransition,
    encode_aggregate_auto,
)


class ProviderError(Exception):
    """The provider could not serve a request (missing data, full budget)."""


class ServiceProvider:
    """Untrusted data-center operator."""

    #: Lock contract, checked by `repro.lintkit`'s lock-discipline pass:
    #: the incremental attempt counters are the only state the provider
    #: mutates from concurrent sessions (see the contention test suite).
    _GUARDED_BY = {
        "_attempt_counters": "_attempt_lock",
        "_attempt_generation": "_attempt_lock",
    }

    def __init__(
        self,
        log_config: Optional[LogConfig] = None,
        store: Optional[BlockStore] = None,
    ) -> None:
        """``store`` opts into durability: every escrow mutation, outsourced
        HSM block, and committed log epoch is journaled to it
        (``repro.storage.journal``), and ``Deployment.restore`` rebuilds
        the provider from it after a crash.  None (the default) keeps the
        provider purely in-memory with zero extra metered work."""
        config = log_config or LogConfig()
        # num_shards > 1 partitions the log into independent epoch lanes
        # (see repro.log.sharded); 1 keeps the paper's single digest chain.
        self.log = ShardedLog(config) if config.num_shards > 1 else DistributedLog(config)
        # Durability journal (None = in-memory only).  Attached before any
        # mutation so provisioning itself (HSM key blocks, genesis epochs)
        # is replayable.
        self.journal: Optional[ProviderJournal] = None
        if store is not None:
            self.attach_journal(ProviderJournal(store))
        # username -> list of uploaded recovery ciphertexts (newest last)
        self._backups: Dict[str, List[LheCiphertext]] = defaultdict(list)
        # username -> AE-encrypted incremental backup blobs (§8)
        self._incrementals: Dict[str, List[bytes]] = defaultdict(list)
        # (username, attempt) -> encrypted HSM replies (failure handling, §8)
        self._replies: Dict[Tuple[str, int], List[bytes]] = defaultdict(list)
        # HSM index -> block store hosting its outsourced BFE secret key
        self.hsm_stores: Dict[int, InMemoryBlockStore] = {}
        # Installed by the deployment: runs one log-update epoch on the fleet.
        self._update_runner: Optional[Callable[[], None]] = None
        # username -> first unused attempt slot, maintained incrementally so
        # attempt numbering is O(1) instead of a scan over the whole log.
        # Counters belong to one log generation: garbage collection resets
        # every user's attempt budget (§6.2), so when the log's GC count
        # moves past ``_attempt_generation`` the counters are dropped.
        self._attempt_counters: Dict[str, int] = {}
        self._attempt_generation = 0
        self._attempt_lock = threading.Lock()

    # -- wiring ---------------------------------------------------------------
    def attach_journal(self, journal: ProviderJournal) -> None:
        """Wire a durability journal into the provider and its log."""
        self.journal = journal
        self.log.journal = journal

    def install_update_runner(self, runner: Callable[[], None]) -> None:
        self._update_runner = runner

    def run_log_update(self) -> None:
        """Run one update epoch (the paper's every-10-minutes batch)."""
        if self._update_runner is None:
            raise ProviderError("no update runner installed")
        self._update_runner()

    # -- backup storage -----------------------------------------------------------
    def upload_backup(self, username: str, ciphertext: LheCiphertext) -> int:
        """Store a recovery ciphertext; returns its index for this user."""
        self._backups[username].append(ciphertext)
        if self.journal is not None:
            self.journal.record_backup(username, ciphertext)
        return len(self._backups[username]) - 1

    def fetch_backup(self, username: str, index: int = -1) -> LheCiphertext:
        """Fetch one stored ciphertext (default: newest).

        Unknown usernames and out-of-range indices raise
        :class:`ProviderError` — a typed refusal the RPC endpoint can frame
        — never a raw ``KeyError``/``IndexError``.
        """
        backups = self._backups.get(username)
        if not backups:
            raise ProviderError(f"no backups stored for {username!r}")
        if not (-len(backups) <= index < len(backups)):
            raise ProviderError(
                f"backup index {index} out of range for {username!r}"
                f" ({len(backups)} stored)"
            )
        return backups[index]

    def backup_count(self, username: str) -> int:
        return len(self._backups.get(username, []))

    def upload_incremental(self, username: str, blob: bytes) -> None:
        self._incrementals[username].append(blob)
        if self.journal is not None:
            self.journal.record_incremental(username, blob)

    def fetch_incrementals(self, username: str) -> List[bytes]:
        return list(self._incrementals.get(username, []))

    # -- the log ---------------------------------------------------------------------
    def log_recovery_attempt(self, username: str, attempt: int, commitment: bytes) -> bytes:
        """Insert (rec|user|attempt -> h) into the pending log batch."""
        identifier = attempt_identifier(username, attempt)
        self.log.insert(identifier, commitment)
        with self._attempt_lock:
            counters = self._current_counters()
            counters[username] = max(counters.get(username, 0), attempt + 1)
        return identifier

    # lint: unguarded[every caller takes self._attempt_lock first — this helper exists so the generation check runs under that one lock]
    def _current_counters(self) -> Dict[str, int]:
        """The counters for the live log generation (caller holds the lock)."""
        if self._attempt_generation != self.log.garbage_collections:
            self._attempt_counters.clear()
            self._attempt_generation = self.log.garbage_collections
        return self._attempt_counters

    def next_attempt_number(self, username: str) -> int:
        """First unused attempt slot for a user in the current log (O(1))."""
        with self._attempt_lock:
            return self._current_counters().get(username, 0)

    def reserve_attempt_number(self, username: str) -> int:
        """Atomically claim the next attempt slot for a user.

        Concurrent sessions for the same user each get a distinct slot; a
        reserved slot stays burnt even if the session later aborts (attempt
        budgets count *attempts*, so this only ever under-serves the user).
        """
        with self._attempt_lock:
            counters = self._current_counters()
            attempt = counters.get(username, 0)
            counters[username] = attempt + 1
            return attempt

    def scan_attempt_number(self, username: str) -> int:
        """Reference implementation of :meth:`next_attempt_number`: rescan
        the whole log plus the pending batch.  O(log size); kept as a
        cross-check for the incremental counters (used by the test suite)."""
        prefix = user_prefix(username)
        used = set()
        for identifier, _ in self.log.dict.items():
            if identifier.startswith(prefix):
                used.add(identifier)
        for identifier, _ in self.log.pending:
            if identifier.startswith(prefix):
                used.add(identifier)
        attempt = 0
        while attempt_identifier(username, attempt) in used:
            attempt += 1
        return attempt

    def log_and_prove(
        self, username: str, attempt: int, commitment: bytes
    ) -> Tuple[bytes, InclusionProof]:
        """Insert, run an update epoch, and return the inclusion proof.

        In deployment the client waits for the next periodic epoch; the
        simulation runs one immediately.
        """
        identifier = self.log_recovery_attempt(username, attempt, commitment)
        self.run_log_update()
        proof = self.log.prove_includes(identifier, commitment)
        if proof is None:  # pragma: no cover - insert above guarantees presence
            raise ProviderError("inclusion proof unavailable after update")
        return identifier, proof

    def prove_inclusion(self, identifier: bytes, value: bytes) -> Optional[InclusionProof]:
        """A fresh inclusion proof against the *current* digest.

        Proofs are digest-exact (the authenticated dictionary is a Merkle
        BST), so a client whose recovery straddles an update epoch must
        refresh its proof before retrying an HSM; returns None if the entry
        is not committed yet.
        """
        return self.log.prove_includes(identifier, value)

    def share_phase_done(self, username: str, attempt: int) -> None:
        """Client hint: it has finished requesting shares for an attempt.

        A liveness (never security) signal: the batched service uses it to
        schedule the next update epoch without invalidating the inclusion
        proofs of in-flight sessions.  The plain provider ignores it.
        """

    def recovery_attempts_for(self, username: str) -> List[Tuple[bytes, bytes]]:
        """All logged attempts for a user (what a monitoring client checks)."""
        prefix = user_prefix(username)
        return [
            (identifier, value)
            for identifier, value in self.log.dict.items()
            if identifier.startswith(prefix)
        ]

    # -- recovery-reply escrow (§8 failure handling) --------------------------------------
    def store_reply(self, username: str, attempt: int, encrypted_reply: bytes) -> None:
        self._replies[(username, attempt)].append(encrypted_reply)
        if self.journal is not None:
            self.journal.record_reply(username, attempt, encrypted_reply)

    def fetch_replies(self, username: str, attempt: int) -> List[bytes]:
        return list(self._replies.get((username, attempt), []))

    # -- durability: snapshot / restore ------------------------------------------------------
    def _shard_logs(self) -> List[Tuple[int, DistributedLog]]:
        """The underlying per-shard logs as ``(shard_index, log)`` pairs
        (a one-element list for the unsharded ``DistributedLog``)."""
        if isinstance(self.log, ShardedLog):
            return list(enumerate(self.log.shards))
        return [(0, self.log)]

    def export_state(self) -> RestoredState:
        """The provider's durable state as one snapshot-able value.

        Captures exactly what the journal would reconstruct by replay:
        committed entries, epochs, certified transitions, escrow, and HSM
        blocks.  Pending batches, leases, and attempt counters are *not*
        durable and are excluded by design.
        """
        num_shards = getattr(self.log, "num_shards", 1)
        state = RestoredState(
            num_shards=num_shards,
            garbage_collections=self.log.garbage_collections,
            backups={u: list(cts) for u, cts in self._backups.items() if cts},
            incrementals={u: list(bs) for u, bs in self._incrementals.items() if bs},
            replies={k: list(bs) for k, bs in self._replies.items() if bs},
            hsm_blocks={
                index: dict(store._blocks)
                for index, store in self.hsm_stores.items()
            },
        )
        for shard, log in self._shard_logs():
            state.shard_entries[shard] = list(log.ordered_entries)
            state.shard_epochs[shard] = log.epoch
            stored = []
            for t in log.certified_transitions:
                scheme, aggregate = encode_aggregate_auto(t.aggregate)
                stored.append(
                    StoredTransition(
                        old_digest=t.old_digest,
                        new_digest=t.new_digest,
                        root=t.root,
                        signer_ids=tuple(t.signer_ids),
                        scheme=scheme,
                        aggregate=aggregate,
                    )
                )
            state.shard_transitions[shard] = stored
        return state

    def snapshot(self) -> int:
        """Write a snapshot record and compact the journal behind it.

        Returns the snapshot's WAL sequence number.  Callers quiesce the
        service first (stop the ticker / hold the batcher lock): snapshots
        are taken between epochs, never mid-transaction.
        """
        if self.journal is None:
            raise ProviderError("provider has no durability journal")
        return self.journal.write_snapshot(self.export_state())

    @classmethod
    def restore(
        cls,
        log_config: Optional[LogConfig],
        journal: ProviderJournal,
        state: RestoredState,
    ) -> "ServiceProvider":
        """Rebuild a provider from a replayed (and reconciled) journal.

        ``state`` must have no open intents left (run
        :func:`repro.storage.journal.reconcile_open_intents` first).
        Attempt counters are re-derived from the restored log entries;
        pending batches are gone by design (their sessions never received
        inclusion proofs and will re-submit).
        """
        config = log_config or LogConfig()
        if state.open_intents:
            raise ProviderError(
                "cannot restore with unresolved epoch intents (reconcile first)"
            )
        if state.num_shards not in (1, config.num_shards):
            raise ProviderError(
                f"journal holds {state.num_shards}-shard state but the config"
                f" says {config.num_shards} shards"
            )
        provider = cls(config)
        for shard, log in provider._shard_logs():
            entries = state.shard_entries.get(shard, [])
            log.ordered_entries = list(entries)
            log.dict = AuthenticatedDictionary.from_entries(entries)
            log.epoch = state.shard_epochs.get(shard, 0)
            log.certified_transitions = [
                t.to_certified(shard, config.num_shards)
                for t in state.shard_transitions.get(shard, [])
            ]
            log.round_history = [
                (t.old_digest, t.new_digest, t.root)
                for t in state.shard_transitions.get(shard, [])
            ]
        provider.log.garbage_collections = state.garbage_collections
        for username, ciphertexts in state.backups.items():
            provider._backups[username] = list(ciphertexts)
        for username, blobs in state.incrementals.items():
            provider._incrementals[username] = list(blobs)
        for key, blobs in state.replies.items():
            provider._replies[key] = list(blobs)
        for index, blocks in state.hsm_blocks.items():
            provider.hsm_stores[index] = JournaledBlockStore.preloaded(
                journal, index, blocks
            )
        # Attempt counters are re-derived, not journaled: the committed log
        # is the ground truth for which slots are burnt (pending slots were
        # never served, so under-counting them only re-burns nothing).
        with provider._attempt_lock:
            provider._attempt_generation = provider.log.garbage_collections
            for identifier, _ in provider.log.dict.items():
                try:
                    username, attempt = parse_attempt_identifier(identifier)
                except ValueError:
                    continue
                provider._attempt_counters[username] = max(
                    provider._attempt_counters.get(username, 0), attempt + 1
                )
        provider.attach_journal(journal)
        return provider

    # -- outsourced HSM key storage ----------------------------------------------------------
    def storage_for_hsm(self, index: int) -> InMemoryBlockStore:
        if index not in self.hsm_stores:
            self.hsm_stores[index] = (
                JournaledBlockStore(self.journal, index)
                if self.journal is not None
                else InMemoryBlockStore()
            )
        return self.hsm_stores[index]
