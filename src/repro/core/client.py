"""The SafetyPin client (paper §4, Figure 3).

A client holds its username, its PIN (supplied per call, never stored), and
the master public key ``mpk``.  ``backup`` runs entirely locally; ``recover``
walks the Figure 3 protocol: log the attempt, obtain an inclusion proof,
contact the PIN-selected cluster, reconstruct.

Also implemented from §8:

- *Failure during recovery*: a fresh per-recovery keypair is generated and
  backed up through SafetyPin itself before recovery starts; HSM replies are
  encrypted under it and escrowed with the provider, so a replacement device
  can resume an interrupted recovery (:meth:`Client.resume_recovery`).  The
  scheme nests arbitrarily.
- *Incremental backups*: a long-lived master AES key is SafetyPin-protected
  once; increments are cheap AE blobs under that key.
- *Multiple recovery ciphertexts*: ``reuse_salt=True`` keeps the same hidden
  cluster across a user's backup series so one puncture pass revokes all of
  them (§8), and a fresh salt is forced after each successful recovery.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.lhe import LheCiphertext, LocationHidingEncryption, BfePke
from repro.core.params import SystemParams
from repro.crypto.commit import commit_recovery
from repro.crypto.ec import ECKeyPair, P256
from repro.crypto.elgamal import ElGamalCiphertext, HashedElGamal
from repro.crypto.gcm import AuthenticationError, ae_decrypt, ae_encrypt
from repro.crypto.shamir import Share
from repro.hsm.device import (
    DecryptShareRequest,
    HsmRefusedError,
    HsmStaleProofError,
    HsmUnavailableError,
)
from repro.crypto.bfe import PuncturedKeyError
from repro.metering import OpMeter

#: Suffix for the hidden account that stores per-recovery keys (§8).
_RECOVERY_KEY_SUFFIX = "!rk"


class RecoveryError(Exception):
    """Recovery failed (wrong PIN, too many HSMs down, or attempt refused)."""


@dataclass
class RecoverySession:
    """State of one in-flight recovery (survives on the provider if the
    client device dies after :meth:`Client.request_shares`)."""

    username: str
    attempt: int
    ciphertext: LheCiphertext
    cluster: Tuple[int, ...]
    context: bytes
    commitment: bytes
    opening: object
    log_identifier: bytes
    inclusion_proof: object
    response_keypair: ECKeyPair
    recovery_key_username: Optional[str] = None
    encrypted_replies: List[bytes] = field(default_factory=list)


class Client:
    """One user's device."""

    def __init__(
        self,
        username: str,
        params: SystemParams,
        provider: object,
        channels: Callable[[int], object],
        mpk: Sequence,
    ) -> None:
        """``channels`` maps an HSM index to a :class:`repro.service.channel.
        Channel`: the narrow transport boundary (one ``decrypt_share``
        method) between the client and a device.  The default deployment
        wiring serializes every request/reply through ``repro.core.wire`` so
        no live HSM objects are ever shared with client code.

        ``provider`` is a :class:`repro.service.channel.ProviderChannel` —
        the same boundary for the provider leg (backup storage, attempt
        logging, proof refresh, reply escrow).  A bare provider(-facade)
        object is accepted for convenience and wrapped in the direct
        reference channel; deployment wiring passes the wire channel so
        this leg, too, crosses bytes only."""
        from repro.service.channel import DirectProviderChannel, ProviderChannel

        self.username = username
        self.params = params
        if not isinstance(provider, ProviderChannel):
            provider = DirectProviderChannel(provider)
        self.provider = provider
        self._channels = channels
        self.mpk = list(mpk)
        self.lhe = LocationHidingEncryption(
            num_hsms=params.num_hsms,
            cluster_size=params.cluster_size,
            threshold=params.threshold,
            pke=BfePke(),
        )
        self.meter = OpMeter()
        self._last_salt: Optional[bytes] = None
        self._master_key: Optional[bytes] = None
        self._master_backup_index: Optional[int] = None

    # -- key material -----------------------------------------------------------
    def refresh_mpk(self, mpk: Sequence) -> None:
        """Install rotated HSM public keys (the paper's ~2 MB/day download)."""
        self.mpk = list(mpk)

    def _config_epoch(self) -> int:
        return max((info.key_epoch for info in self.mpk), default=0)

    # -- backup (step Ê of Figure 3) ----------------------------------------------
    def backup(
        self,
        message: bytes,
        pin: str,
        reuse_salt: bool = False,
        username: Optional[str] = None,
    ) -> int:
        """Encrypt ``message`` locally and upload; returns the backup index.

        ``reuse_salt=True`` reuses the previous salt so the backup series
        shares one hidden cluster (§8 "multiple recovery ciphertexts").
        """
        self.params.validate_pin(pin)
        username = username if username is not None else self.username
        salt = self._last_salt if reuse_salt else None
        with self.meter.attached():
            ciphertext = self.lhe.encrypt(
                self.mpk,
                pin,
                message,
                username=username,
                salt=salt,
                config_epoch=self._config_epoch(),
            )
        self._last_salt = ciphertext.salt
        return self.provider.upload_backup(username, ciphertext)

    # -- recovery (steps Ë..Ð of Figure 3) --------------------------------------------
    def recover(self, pin: str, backup_index: int = -1) -> bytes:
        """Full recovery of this user's backup at ``backup_index``."""
        session = self.begin_recovery(pin, backup_index)
        self.request_shares(session, pin)
        return self.finish_recovery(session)

    def begin_recovery(
        self,
        pin: str,
        backup_index: int = -1,
        backup_recovery_key: bool = True,
        username: Optional[str] = None,
    ) -> RecoverySession:
        """Steps Ë-Î: fetch the ciphertext, log the attempt, get the proof."""
        self.params.validate_pin(pin)
        username = username if username is not None else self.username
        ciphertext = self.provider.fetch_backup(username, backup_index)
        attempt = self.provider.next_attempt_number(username)
        if attempt >= self.params.max_attempts_per_user:
            raise RecoveryError(
                f"user {username!r} has exhausted the {self.params.max_attempts_per_user}"
                " allowed recovery attempts"
            )

        with self.meter.attached():
            cluster = tuple(self.lhe.select(ciphertext.salt, pin))
            context = self.lhe.context_for(ciphertext, self.mpk, pin)
            response_keypair = P256.keygen()

        # §8 failure handling: SafetyPin-protect the per-recovery secret key
        # *before* the first HSM is contacted.
        recovery_key_username = None
        if backup_recovery_key:
            recovery_key_username = f"{username}{_RECOVERY_KEY_SUFFIX}{attempt}"
            with self.meter.attached():
                nested_ct = self.lhe.encrypt(
                    self.mpk,
                    pin,
                    response_keypair.secret.to_bytes(32, "big"),
                    username=recovery_key_username,
                    config_epoch=self._config_epoch(),
                )
            self.provider.upload_backup(recovery_key_username, nested_ct)

        with self.meter.attached():
            commitment, opening = commit_recovery(
                username, cluster, ciphertext.ciphertext_hash()
            )
        log_identifier, proof = self.provider.log_and_prove(username, attempt, commitment)
        return RecoverySession(
            username=username,
            attempt=attempt,
            ciphertext=ciphertext,
            cluster=cluster,
            context=context,
            commitment=commitment,
            opening=opening,
            log_identifier=log_identifier,
            inclusion_proof=proof,
            response_keypair=response_keypair,
            recovery_key_username=recovery_key_username,
        )

    def request_shares(self, session: RecoverySession, pin: str) -> int:
        """Step Ï: ask each cluster HSM to decrypt-and-puncture.

        Replies (encrypted under the per-recovery key) are escrowed with the
        provider so a replacement device can finish if this one dies.
        Returns the number of shares obtained.
        """
        obtained = 0
        try:
            for position, hsm_index in enumerate(session.cluster):
                try:
                    reply = self._channels(hsm_index).decrypt_share(
                        self._share_request(session, position)
                    )
                except HsmStaleProofError:
                    # Our inclusion proof went stale (an update epoch
                    # committed mid-recovery); refresh and retry once
                    # before writing the share off as ⊥.
                    reply = self._retry_with_fresh_proof(session, position, hsm_index)
                    if reply is None:
                        continue
                except (HsmUnavailableError, PuncturedKeyError, HsmRefusedError):
                    # Fail-stopped, already-punctured, or policy-refusing
                    # HSM: count it against the threshold, like the paper's
                    # ⊥ shares.
                    continue
                reply_bytes = reply.to_bytes()
                self.provider.store_reply(session.username, session.attempt, reply_bytes)
                session.encrypted_replies.append(reply_bytes)
                obtained += 1
        finally:
            # Tell the provider this attempt's share phase is over, so the
            # batched service can schedule the next epoch (liveness hint).
            self.provider.share_phase_done(session.username, session.attempt)
        return obtained

    def _share_request(self, session: RecoverySession, position: int) -> DecryptShareRequest:
        return DecryptShareRequest(
            username=session.username,
            log_identifier=session.log_identifier,
            commitment=session.commitment,
            opening=session.opening,
            inclusion_proof=session.inclusion_proof,
            share_ciphertext=session.ciphertext.share_ciphertexts[position],
            context=session.context,
            response_key=session.response_keypair.public,
        )

    def _retry_with_fresh_proof(
        self, session: RecoverySession, position: int, hsm_index: int
    ):
        """Refresh the inclusion proof and retry one refused HSM.

        Inclusion proofs are digest-exact, so they expire whenever a later
        update epoch rehashes their BST path.  Only retries when the
        provider serves a *different* proof than the session already holds —
        a genuine policy refusal is never retried.
        """
        fresh = self.provider.prove_inclusion(session.log_identifier, session.commitment)
        if fresh is None or fresh == session.inclusion_proof:
            return None
        session.inclusion_proof = fresh
        try:
            return self._channels(hsm_index).decrypt_share(
                self._share_request(session, position)
            )
        except (HsmUnavailableError, PuncturedKeyError, HsmRefusedError):
            return None

    def finish_recovery(self, session: RecoverySession) -> bytes:
        """Decrypt the escrowed replies and reconstruct the backup."""
        shares = self._decrypt_replies(
            session.encrypted_replies,
            session.response_keypair.secret,
            session.username,
        )
        if len(shares) < self.params.threshold:
            raise RecoveryError(
                f"only {len(shares)} of the required {self.params.threshold} shares"
                " were recovered (wrong PIN, or too many HSMs unavailable)"
            )
        with self.meter.attached():
            message = self.lhe.reconstruct(session.ciphertext, shares, session.context)
        # After recovery the old salt must not be reused (§8).
        self._last_salt = None
        return message

    def _decrypt_replies(
        self, encrypted_replies: Sequence[bytes], secret: int, username: str
    ) -> List[Share]:
        shares = []
        with self.meter.attached():
            for blob in encrypted_replies:
                # A reply that was corrupted in transit or escrow decodes or
                # authenticates badly here; it counts as a ⊥ share (like a
                # refusing HSM) rather than aborting the whole recovery —
                # the remaining shares may still reach the threshold.
                try:
                    reply = ElGamalCiphertext.from_bytes(blob)
                    share_bytes = HashedElGamal.decrypt(
                        secret,
                        reply,
                        context=b"recovery-reply" + username.encode("utf-8"),
                    )
                    shares.append(Share.from_bytes(share_bytes))
                except (AuthenticationError, ValueError):
                    continue
        return shares

    # -- §8: resuming after device failure -----------------------------------------------
    def resume_recovery(self, pin: str, attempt: int, username: Optional[str] = None) -> bytes:
        """Finish a recovery started by a device that has since died.

        The replacement device recovers the per-recovery secret key through
        SafetyPin (a nested, fully-logged recovery), then decrypts the
        escrowed HSM replies.  Nesting recurses naturally: if *this* device
        also dies, the next one resumes the nested recovery the same way.
        """
        username = username if username is not None else self.username
        replies = self.provider.fetch_replies(username, attempt)
        if not replies:
            raise RecoveryError(f"no escrowed replies for {username!r} attempt {attempt}")
        rk_username = f"{username}{_RECOVERY_KEY_SUFFIX}{attempt}"
        session = self.begin_recovery(
            pin, backup_index=-1, backup_recovery_key=True, username=rk_username
        )
        self.request_shares(session, pin)
        secret_bytes = self.finish_recovery(session)
        secret = int.from_bytes(secret_bytes, "big")

        original_ct = self.provider.fetch_backup(username)
        shares = self._decrypt_replies(replies, secret, username)
        if len(shares) < self.params.threshold:
            raise RecoveryError("not enough escrowed shares to finish recovery")
        with self.meter.attached():
            cluster = tuple(self.lhe.select(original_ct.salt, pin))
            context = self.lhe.context_for(original_ct, self.mpk, pin)
            return self.lhe.reconstruct(original_ct, shares, context)

    # -- §8: incremental backups ------------------------------------------------------------
    def enable_incremental_backups(self, pin: str) -> None:
        """SafetyPin-protect a long-lived master key kept on the device."""
        self._master_key = secrets.token_bytes(16)
        self._master_backup_index = self.backup(self._master_key, pin)

    def incremental_backup(self, data: bytes) -> None:
        if self._master_key is None:
            raise RecoveryError("incremental backups not enabled on this device")
        with self.meter.attached():
            blob = ae_encrypt(self._master_key, data, aad=self.username.encode("utf-8"))
        self.provider.upload_incremental(self.username, blob)

    def recover_incrementals(self, pin: str) -> List[bytes]:
        """Recover the master key once, then decrypt every increment."""
        if self._master_backup_index is None:
            raise RecoveryError("no master-key backup recorded")
        master_key = self.recover(pin, backup_index=self._master_backup_index)
        with self.meter.attached():
            return [
                ae_decrypt(master_key, blob, aad=self.username.encode("utf-8"))
                for blob in self.provider.fetch_incrementals(self.username)
            ]

    # -- monitoring (§6.3) ---------------------------------------------------------------------
    def audit_my_recovery_attempts(self) -> List[Tuple[bytes, bytes]]:
        """Check the public log for recovery attempts against this account."""
        return self.provider.recovery_attempts_for(self.username)
