"""Appendix A's experiments as executable games.

The paper defines location-hiding encryption's correctness (Experiment 2)
and security (Experiment 4) as games between a challenger and an adversary.
This module implements both games verbatim over the real LHE scheme, so the
test suite can *measure* the quantities the theorems bound:

- Experiment 2 run many times estimates the recovery-failure probability,
  compared against Theorem 9's binomial bound;
- Experiment 4 run against the Remark 5 adversary estimates the attacker's
  advantage, compared against Theorem 10's ``3N/(n|P|)`` bound and the
  generic lower bound ``f·N/(n|P|)``.

Games run over the hashed-ElGamal instantiation (Appendix A.4) at small
parameters so thousands of trials fit in test time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.lhe import ElGamalPke, LocationHidingEncryption
from repro.crypto.elgamal import HashedElGamal
from repro.crypto.gcm import AuthenticationError


@dataclass
class GameParams:
    """Experiment parameters (N, n, t, |P|, f_live, f_secret)."""

    num_hsms: int = 12
    cluster_size: int = 4
    threshold: int = 2
    pin_digits: int = 1  # |P| = 10
    f_live: float = 1 / 8
    f_secret: float = 1 / 4

    @property
    def pin_space(self) -> List[str]:
        return [f"{p:0{self.pin_digits}d}" for p in range(10**self.pin_digits)]


def _scheme(params: GameParams) -> LocationHidingEncryption:
    return LocationHidingEncryption(
        params.num_hsms, params.cluster_size, params.threshold, pke=ElGamalPke()
    )


# ---------------------------------------------------------------------------
# Experiment 2: correctness
# ---------------------------------------------------------------------------
def correctness_experiment(
    params: GameParams, pin: str, message: bytes, rng: random.Random
) -> bool:
    """One run of Experiment 2; returns True iff recovery succeeded.

    Each key fails independently with probability f_live; decryption uses
    only surviving keys.
    """
    lhe = _scheme(params)
    keys = [HashedElGamal.keygen(rng) for _ in range(params.num_hsms)]
    publics = [k.public for k in keys]
    ct = lhe.encrypt(publics, pin, message, username="exp2")
    failed = {i for i in range(params.num_hsms) if rng.random() < params.f_live}
    cluster = lhe.select(ct.salt, pin)
    context = lhe.context_for(ct, publics, pin)
    shares = []
    for position, index in enumerate(cluster):
        if index in failed:
            shares.append(None)
            continue
        shares.append(lhe.decrypt_share(keys[index].secret, position, ct, context))
    try:
        return lhe.reconstruct(ct, shares, context) == message
    except Exception:
        return False


def estimate_correctness_failure(
    params: GameParams, trials: int, seed: int = 0
) -> float:
    rng = random.Random(seed)
    failures = 0
    for t in range(trials):
        pin = rng.choice(params.pin_space)
        if not correctness_experiment(params, pin, b"msg", rng):
            failures += 1
    return failures / trials


# ---------------------------------------------------------------------------
# Experiment 4: security
# ---------------------------------------------------------------------------
class Remark5Adversary:
    """The generic attack of Remark 5, playing Experiment 4.

    Strategy: pick candidate PINs; for each, corrupt that PIN's cluster
    (within the f_secret·N budget) and try to decrypt the challenge.  Guess
    the bit from any successful decryption; otherwise flip a coin.
    """

    def __init__(self, pins_to_try: Optional[int] = None) -> None:
        self.pins_to_try = pins_to_try

    def play(
        self,
        params: GameParams,
        lhe: LocationHidingEncryption,
        publics: Sequence,
        salt: bytes,
        ciphertext,
        msg0: bytes,
        msg1: bytes,
        corrupt,  # corrupt(index) -> secret key (challenger-enforced budget)
        rng: random.Random,
    ) -> int:
        budget = int(params.f_secret * params.num_hsms)
        corrupted: dict = {}
        candidates = list(params.pin_space)
        rng.shuffle(candidates)
        if self.pins_to_try is not None:
            candidates = candidates[: self.pins_to_try]
        for pin in candidates:
            cluster = lhe.select(salt, pin)
            needed = [i for i in set(cluster) if i not in corrupted]
            if len(corrupted) + len(needed) > budget:
                continue  # cannot afford this PIN's cluster
            for index in needed:
                corrupted[index] = corrupt(index)
            context = lhe.context_for(ciphertext, publics, pin)
            shares = []
            for position, index in enumerate(cluster):
                if index not in corrupted:
                    shares.append(None)
                    continue
                try:
                    shares.append(
                        lhe.decrypt_share(corrupted[index], position, ciphertext, context)
                    )
                except (AuthenticationError, Exception):
                    shares.append(None)
            try:
                plaintext = lhe.reconstruct(ciphertext, shares, context)
            except Exception:
                continue
            if plaintext == msg0:
                return 0
            if plaintext == msg1:
                return 1
        return rng.randrange(2)


def security_experiment(
    params: GameParams, adversary, beta: int, rng: random.Random
) -> int:
    """One run of Experiment 4 with challenge bit ``beta``; returns the
    adversary's guess."""
    lhe = _scheme(params)
    keys = [HashedElGamal.keygen(rng) for _ in range(params.num_hsms)]
    publics = [k.public for k in keys]
    salt = bytes(rng.randrange(256) for _ in range(16))
    pin = rng.choice(params.pin_space)
    msg0, msg1 = b"message-zero!!!!", b"message-one!!!!!"
    ct = lhe.encrypt(
        publics, pin, msg1 if beta else msg0, username="exp4", salt=salt
    )

    budget = int(params.f_secret * params.num_hsms)
    handed_out = set()

    def corrupt(index: int):
        handed_out.add(index)
        if len(handed_out) > budget:
            raise RuntimeError("adversary exceeded its corruption budget")
        return keys[index].secret

    return adversary.play(
        params, lhe, publics, salt, ct, msg0, msg1, corrupt, rng
    )


def estimate_advantage(
    params: GameParams, adversary, trials: int, seed: int = 0
) -> float:
    """|Pr[guess=1 | beta=1] − Pr[guess=1 | beta=0]| over ``trials`` runs."""
    rng = random.Random(seed)
    ones_when_one = 0
    ones_when_zero = 0
    half = trials // 2
    for _ in range(half):
        ones_when_one += security_experiment(params, adversary, 1, rng)
    for _ in range(half):
        ones_when_zero += security_experiment(params, adversary, 0, rng)
    return abs(ones_when_one / half - ones_when_zero / half)
