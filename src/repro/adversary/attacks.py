"""Concrete attacks from the paper's threat model.

These run against the real protocol objects — no mocks — so a passing
security test means the deployed code path actually resisted the attack.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.lhe import LheCiphertext, LocationHidingEncryption, parse_share_plaintext
from repro.crypto.bfe import BloomFilterEncryption, PuncturedKeyError
from repro.crypto.gcm import AuthenticationError
from repro.crypto.shamir import Share
from repro.hsm.device import StolenSecrets
from repro.log.distributed import DistributedLog, UpdateRound


# ---------------------------------------------------------------------------
# Brute-force PIN guessing through the front door
# ---------------------------------------------------------------------------
class BruteForcePinAttacker:
    """Tries PINs via the legitimate recovery protocol.

    The distributed log limits attempts per username; the attack must die
    after ``max_attempts_per_user`` guesses no matter how many PINs remain.
    """

    def __init__(self, client_factory, username: str) -> None:
        # client_factory() -> a Client bound to the victim's username (the
        # attacker controls the provider, so it can impersonate the account).
        self._client_factory = client_factory
        self.username = username
        self.guesses_made = 0

    def run(self, pin_candidates: Iterable[str]) -> Optional[bytes]:
        """Guess until success or until the system refuses more attempts."""
        from repro.core.client import RecoveryError

        client = self._client_factory()
        for pin in pin_candidates:
            self.guesses_made += 1
            try:
                return client.recover(pin)
            except RecoveryError:
                continue
            except KeyError:
                break  # log refused the attempt identifier
        return None


# ---------------------------------------------------------------------------
# Adaptive HSM corruption (Theorem 10 / Remark 5)
# ---------------------------------------------------------------------------
def decrypt_with_stolen_secrets(
    lhe: LocationHidingEncryption,
    ciphertext: LheCiphertext,
    stolen: Sequence[StolenSecrets],
    pin_guess: str,
    mpk: Sequence,
) -> Optional[bytes]:
    """Attempt decryption of ``ciphertext`` using only stolen HSM secrets.

    Succeeds only if (a) ``pin_guess`` is the right PIN *and* (b) the stolen
    set covers >= t members of the hidden cluster — exactly the win
    condition of the security game.
    """
    by_index = {s.index: s for s in stolen}
    cluster = lhe.select(ciphertext.salt, pin_guess)
    context = lhe.context_for(ciphertext, mpk, pin_guess)
    shares: List[Optional[Share]] = []
    for position, hsm_index in enumerate(cluster):
        secrets_ = by_index.get(hsm_index)
        if secrets_ is None:
            shares.append(None)
            continue
        try:
            plaintext = BloomFilterEncryption.decrypt(
                secrets_.bfe_secret,
                ciphertext.share_ciphertexts[position],
                context=context,
            )
        except (PuncturedKeyError, AuthenticationError):
            shares.append(None)
            continue
        _, share = parse_share_plaintext(plaintext)
        shares.append(share)
    try:
        return lhe.reconstruct(ciphertext, shares, context)
    except Exception:
        return None


class AdaptiveCorruptionAttacker:
    """Remark 5's generic attack: corrupt a budget of HSMs chosen *after*
    seeing the ciphertext, testing one PIN guess per ``n`` corruptions."""

    def __init__(self, fleet, lhe: LocationHidingEncryption, budget: int) -> None:
        self.fleet = fleet
        self.lhe = lhe
        self.budget = budget
        self.corrupted: List[int] = []

    def run(
        self,
        ciphertext: LheCiphertext,
        pin_candidates: Sequence[str],
        mpk: Sequence,
    ) -> Optional[bytes]:
        stolen: List[StolenSecrets] = []
        seen = set()
        for pin in pin_candidates:
            cluster = self.lhe.select(ciphertext.salt, pin)
            for index in cluster:
                if index in seen:
                    continue
                if len(seen) >= self.budget:
                    break
                seen.add(index)
                stolen.append(self.fleet[index].extract_secrets())
            self.corrupted = sorted(seen)
            result = decrypt_with_stolen_secrets(self.lhe, ciphertext, stolen, pin, mpk)
            if result is not None:
                return result
            if len(seen) >= self.budget:
                break
        return None


# ---------------------------------------------------------------------------
# Cheating service provider
# ---------------------------------------------------------------------------
class CheatingProvider(DistributedLog):
    """A provider that tries to break the log's append-only property.

    Attack surface implemented:

    - :meth:`rewrite_entry`: silently replace the value of a defined
      identifier, then try to get the fleet to certify the resulting state
      (the attack that would let it reset PIN-attempt counters).
    - :meth:`forge_round_dropping_entry`: present a round whose proofs omit
      one of the claimed insertions.
    - :meth:`equivocate`: produce two different rounds on the same base
      digest, attempting to show different logs to different HSMs.
    """

    def rewrite_entry(self, identifier: bytes, new_value: bytes) -> None:
        """Mutate provider-side state behind the HSMs' backs."""
        entries = [
            (i, new_value if i == identifier else v)
            for i, v in self.dict.items()
        ]
        from repro.log.authdict import AuthenticatedDictionary

        self.dict = AuthenticatedDictionary.from_entries(entries)
        self.ordered_entries = [
            (i, new_value if i == identifier else v) for i, v in self.ordered_entries
        ]

    def forge_round_dropping_entry(self, hsm_count: int) -> UpdateRound:
        """Build a round whose extension proofs skip the first pending entry
        while the claimed new digest still includes it."""
        if not self.pending:
            raise ValueError("no pending entries to forge against")
        dropped, *rest = self.pending
        honest_round = self.prepare_update(num_chunks=max(1, hsm_count))
        # Serve proofs with the first insertion removed from its chunk.
        for i, chunk in enumerate(honest_round.chunks):
            if any(p.identifier == dropped[0] for p in chunk.proofs):
                forged = tuple(
                    p for p in chunk.proofs if p.identifier != dropped[0]
                )
                honest_round.chunks[i] = dataclasses.replace(chunk, proofs=forged)
                break
        return honest_round

    def equivocate(
        self, entries_a: List[Tuple[bytes, bytes]], entries_b: List[Tuple[bytes, bytes]]
    ) -> Tuple[UpdateRound, UpdateRound]:
        """Two alternative rounds from the same base digest."""
        import copy

        base_pending = list(self.pending)
        snapshot = copy.deepcopy(self)
        self.pending = base_pending + entries_a
        round_a = self.prepare_update(num_chunks=1)
        snapshot.pending = base_pending + entries_b
        round_b = snapshot.prepare_update(num_chunks=1)
        return round_a, round_b
