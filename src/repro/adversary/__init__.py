"""Attack harnesses for the security test suite.

Each class plays one adversary from the paper's threat model (§2, §3):
the brute-force PIN guesser, the adaptively corrupting state actor of
Theorem 10 / Remark 5, and the cheating service provider who tries to break
the log's append-only property.  Tests assert that every attack fails
exactly as the analysis predicts — and that the corresponding attack on the
baseline system *succeeds*, reproducing the paper's motivation.
"""

from repro.adversary.attacks import (
    BruteForcePinAttacker,
    AdaptiveCorruptionAttacker,
    CheatingProvider,
    decrypt_with_stolen_secrets,
)

__all__ = [
    "BruteForcePinAttacker",
    "AdaptiveCorruptionAttacker",
    "CheatingProvider",
    "decrypt_with_stolen_secrets",
]
