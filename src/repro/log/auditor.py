"""External log auditors (paper §6.3).

Anyone may audit the SafetyPin log: given two published digests and the
provider's claimed log contents, the auditor replays the insertions, checks
both digests, and checks the append-only relationship.  Auditors also let
users *monitor* the log — the second purpose of the log in §6: a client can
ask whether any recovery attempt has ever been filed under its username,
detecting attacks on its backup even when the attacker knew the PIN.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.log.authdict import AuthenticatedDictionary


class AuditFailure(Exception):
    """The provider's log does not match its published digests."""


class ExternalAuditor:
    """A third-party auditor (e.g. the paper suggests Let's Encrypt)."""

    def __init__(self, name: str = "auditor") -> None:
        self.name = name
        self.checked_digests: List[bytes] = []

    # -- digest replay --------------------------------------------------------
    def replay_digest(self, entries: Sequence[Tuple[bytes, bytes]]) -> bytes:
        """Rebuild the log tree from an ordered entry list; return digest."""
        return AuthenticatedDictionary.from_entries(entries).digest

    def audit_snapshot(
        self, entries: Sequence[Tuple[bytes, bytes]], claimed_digest: bytes
    ) -> None:
        """Check that ``entries`` really hash to ``claimed_digest``."""
        seen = set()
        for identifier, _ in entries:
            if identifier in seen:
                raise AuditFailure(f"duplicate identifier in log: {identifier!r}")
            seen.add(identifier)
        digest = self.replay_digest(entries)
        if digest != claimed_digest:
            raise AuditFailure("log contents do not match the published digest")
        self.checked_digests.append(claimed_digest)

    def audit_extension(
        self,
        old_entries: Sequence[Tuple[bytes, bytes]],
        new_entries: Sequence[Tuple[bytes, bytes]],
        old_digest: bytes,
        new_digest: bytes,
    ) -> None:
        """Check both digests and that the new log extends the old one:
        the old entry list is a prefix and no identifier repeats (§6.1)."""
        if list(new_entries[: len(old_entries)]) != list(old_entries):
            raise AuditFailure("new log does not have the old log as a prefix")
        self.audit_snapshot(old_entries, old_digest)
        self.audit_snapshot(new_entries, new_digest)

    # -- user-facing monitoring ---------------------------------------------------
    @staticmethod
    def recovery_attempts_for(
        entries: Sequence[Tuple[bytes, bytes]], identifier_prefix: bytes
    ) -> List[Tuple[bytes, bytes]]:
        """All log entries whose identifier starts with ``identifier_prefix``.

        SafetyPin logs recovery attempts under (an opaque form of) the
        username; a user who never initiated recovery but finds entries here
        knows someone tried to read her backup.
        """
        return [(i, v) for i, v in entries if i.startswith(identifier_prefix)]
