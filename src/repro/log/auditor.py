"""External log auditors (paper §6.3).

Anyone may audit the SafetyPin log: given two published digests and the
provider's claimed log contents, the auditor replays the insertions, checks
both digests, and checks the append-only relationship.  Auditors also let
users *monitor* the log — the second purpose of the log in §6: a client can
ask whether any recovery attempt has ever been filed under its username,
detecting attacks on its backup even when the attacker knew the PIN.

Sharded logs audit the same way per shard, anchored to the cross-shard
root (``audit_sharded_snapshot``), and a reshard migration's completeness
— the one property device-held digests cannot show — is checked offline
from the archived unsharded log (``audit_reshard``).

Thread safety: auditors are external observers working on snapshot copies
(entry lists); they hold no locks and never touch live log state, so one
auditor instance should not be shared across threads (it accumulates
``checked_digests``) but any number may run in parallel on their own.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.log.authdict import AuthenticatedDictionary


class AuditFailure(Exception):
    """The provider's log does not match its published digests."""


class ExternalAuditor:
    """A third-party auditor (e.g. the paper suggests Let's Encrypt)."""

    def __init__(self, name: str = "auditor") -> None:
        self.name = name
        self.checked_digests: List[bytes] = []

    # -- digest replay --------------------------------------------------------
    def replay_digest(self, entries: Sequence[Tuple[bytes, bytes]]) -> bytes:
        """Rebuild the log tree from an ordered entry list; return digest."""
        return AuthenticatedDictionary.from_entries(entries).digest

    def audit_snapshot(
        self, entries: Sequence[Tuple[bytes, bytes]], claimed_digest: bytes
    ) -> None:
        """Check that ``entries`` really hash to ``claimed_digest``."""
        seen = set()
        for identifier, _ in entries:
            if identifier in seen:
                raise AuditFailure(f"duplicate identifier in log: {identifier!r}")
            seen.add(identifier)
        digest = self.replay_digest(entries)
        if digest != claimed_digest:
            raise AuditFailure("log contents do not match the published digest")
        self.checked_digests.append(claimed_digest)

    def audit_extension(
        self,
        old_entries: Sequence[Tuple[bytes, bytes]],
        new_entries: Sequence[Tuple[bytes, bytes]],
        old_digest: bytes,
        new_digest: bytes,
    ) -> None:
        """Check both digests and that the new log extends the old one:
        the old entry list is a prefix and no identifier repeats (§6.1)."""
        if list(new_entries[: len(old_entries)]) != list(old_entries):
            raise AuditFailure("new log does not have the old log as a prefix")
        self.audit_snapshot(old_entries, old_digest)
        self.audit_snapshot(new_entries, new_digest)

    # -- sharded logs ---------------------------------------------------------
    def audit_sharded_snapshot(
        self,
        shard_entries: Sequence[Sequence[Tuple[bytes, bytes]]],
        claimed_root: bytes,
    ) -> None:
        """Audit a sharded log against its published cross-shard root.

        Checks that (a) every entry lives on the shard its identifier
        hashes to, (b) no identifier repeats anywhere in the partition, and
        (c) replaying each shard and combining the digests reproduces the
        claimed cross-shard root.  ``shard_entries[k]`` is shard ``k``'s
        ordered entry list (``ShardedLog.shard_entries()``).
        """
        from repro.log.sharded import cross_shard_root, shard_of

        num_shards = len(shard_entries)
        seen = set()
        for shard, entries in enumerate(shard_entries):
            for identifier, _ in entries:
                if shard_of(identifier, num_shards) != shard:
                    raise AuditFailure(
                        f"entry {identifier!r} is on shard {shard} but hashes "
                        f"to shard {shard_of(identifier, num_shards)}"
                    )
                if identifier in seen:
                    raise AuditFailure(f"duplicate identifier in log: {identifier!r}")
                seen.add(identifier)
        root = cross_shard_root(
            [self.replay_digest(entries) for entries in shard_entries]
        )
        if root != claimed_root:
            raise AuditFailure("shard contents do not match the published root")
        self.checked_digests.append(claimed_root)

    def audit_reshard(
        self,
        old_entries: Sequence[Tuple[bytes, bytes]],
        shard_entries: Sequence[Sequence[Tuple[bytes, bytes]]],
    ) -> None:
        """Check a reshard migration for completeness.

        The one property HSMs cannot verify from digests alone: the new
        shard partition must be exactly the hash partition of the archived
        unsharded log — nothing dropped, nothing added, order preserved
        within each shard.  (``old_entries`` is the last archive in
        ``ShardedLog.archived_logs`` after a migration.)
        """
        from repro.log.sharded import partition_entries

        expected = partition_entries(old_entries, len(shard_entries))
        for shard, (want, got) in enumerate(zip(expected, shard_entries)):
            # Entries pending at migration time ride the genesis epochs like
            # fresh insertions, so the old log's partition is a prefix.
            if list(got[: len(want)]) != list(want):
                raise AuditFailure(
                    f"shard {shard} does not extend the hash partition of the old log"
                )

    # -- user-facing monitoring ---------------------------------------------------
    @staticmethod
    def recovery_attempts_for(
        entries: Sequence[Tuple[bytes, bytes]], identifier_prefix: bytes
    ) -> List[Tuple[bytes, bytes]]:
        """All log entries whose identifier starts with ``identifier_prefix``.

        SafetyPin logs recovery attempts under (an opaque form of) the
        username; a user who never initiated recovery but finds entries here
        knows someone tried to read her backup.
        """
        return [(i, v) for i, v in entries if i.startswith(identifier_prefix)]
