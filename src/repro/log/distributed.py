"""The Figure 5 log-update protocol.

Flow per epoch (the provider batches client insertions, e.g. every 10
minutes):

1. The provider splits the ``I`` pending insertions into ``N`` chunks and
   applies them to its log one chunk at a time, recording each intermediate
   digest ``d_i`` and per-chunk extension proof ``π_i``.
2. It commits to the chunk sequence with a Merkle root ``R`` and announces
   ``(d, d', R)`` to every HSM.
3. Each HSM audits ``C`` chunks — chosen deterministically from ``(R, its
   node id)`` per Appendix B.3, so any HSM can predict every other HSM's
   audit set and failures are recoverable — fetching each chunk package and
   checking (a) its Merkle inclusion under ``R``, (b) its extension proofs,
   and (c) boundary conditions (first chunk starts at ``d``, last ends at
   ``d'``).  If all pass, the HSM signs ``(d, d', R)``.
4. The provider aggregates the signatures; each HSM verifies the aggregate
   against the expected signer set and, if a quorum signed, adopts ``d'``.

With at most an ``f_secret`` fraction compromised and ``C = λ`` audited
chunks each, the probability that a bad chunk escapes every honest auditor
is ``exp((2·f_secret − 1)·C)`` (§6.2) — about ``2^-128`` at the paper's
parameters.

Sharding (``repro.log.sharded``) runs one instance of this protocol per
shard: a :class:`DistributedLog` then carries a ``shard_index`` within a
``num_shards``-way partition, every round and certified transition is
stamped with both, and the signed transition message is domain-separated by
shard so a quorum's endorsement of shard *k* can never be replayed against
shard *j* (all shards start from the same empty digest).  ``num_shards=1``
keeps the exact legacy message bytes, so metered costs for unsharded
deployments are unchanged.

Thread safety: a :class:`DistributedLog` is *not* internally synchronized —
callers must serialize access (the serving layer holds
``EpochBatcher.lock`` around every log mutation; under
:class:`~repro.log.sharded.ShardedLog`, concurrent epoch lanes are safe
only because each lane touches a distinct shard instance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto import blssig
from repro.crypto.ec import ECKeyPair, P256
from repro.crypto.hashing import sha256
from repro.crypto.merkle import MerkleProof, MerkleTree
from repro.log.authdict import AuthenticatedDictionary, InsertionProof


class LogUpdateRejected(Exception):
    """An HSM refused a log update (bad proof, bad signature, bad quorum)."""


# ---------------------------------------------------------------------------
# Pluggable multisignature schemes
# ---------------------------------------------------------------------------
class MultiSigScheme:
    """Interface for the signature scheme used to endorse digest transitions.

    The paper uses BLS multisignatures (constant-size aggregate, constant
    verification cost).  We also provide a concatenated-ECDSA scheme: a valid
    but non-compact aggregate, ~500× faster to run in pure Python, used by
    default in tests.  The benchmark for Figure 8 accounts costs for BLS, as
    deployed.
    """

    name = "abstract"

    def keygen(self, rng=None):
        """Generate one signer's keypair."""
        raise NotImplementedError

    def sign(self, secret, message: bytes):
        """Sign ``message`` with one signer's secret."""
        raise NotImplementedError

    def aggregate(self, signatures: Sequence):
        """Combine per-signer signatures into one aggregate."""
        raise NotImplementedError

    def verify_aggregate(self, publics: Sequence, message: bytes, aggregate) -> bool:
        """Check that every listed public key's signer signed ``message``."""
        raise NotImplementedError


class EcdsaMultiSig(MultiSigScheme):
    """Aggregate = tuple of per-signer ECDSA signatures over P-256."""

    name = "ecdsa-list"

    def keygen(self, rng=None) -> ECKeyPair:
        """A fresh P-256 keypair."""
        return P256.keygen(rng)

    def sign(self, secret: int, message: bytes) -> Tuple[int, int]:
        """One ECDSA signature (r, s)."""
        return P256.ecdsa_sign(secret, message)

    def aggregate(self, signatures: Sequence[Tuple[int, int]]):
        """The "aggregate" is simply the tuple of signatures."""
        return tuple(signatures)

    def verify_aggregate(self, publics, message: bytes, aggregate) -> bool:
        """Batched verification: signatures share the fixed-base comb work
        and result points are normalized in chunks by Montgomery batch
        inversion, instead of N independent verifies each paying their own
        table builds.  Accept/reject decisions, metered ``ecdsa_verify``
        counts, and the early-abort cost bound on bad aggregates all match
        the sequential short-circuiting loop this replaces."""
        if len(publics) != len(aggregate):
            return False
        return P256.ecdsa_verify_all(
            [
                (pk.public if isinstance(pk, ECKeyPair) else pk, message, sig)
                for pk, sig in zip(publics, aggregate)
            ]
        )


class BlsMultiSig(MultiSigScheme):
    """The paper's scheme: BLS multisignature, two pairings to verify."""

    name = "bls"

    def keygen(self, rng=None) -> blssig.BlsKeyPair:
        """A fresh BLS12-381 keypair."""
        return blssig.keygen(rng)

    def sign(self, secret: int, message: bytes) -> blssig.BlsSignature:
        """One BLS signature (a G1 point)."""
        return blssig.sign(secret, message)

    def aggregate(self, signatures: Sequence[blssig.BlsSignature]) -> blssig.BlsSignature:
        """Sum the signatures into one constant-size aggregate."""
        return blssig.aggregate_signatures(signatures)

    def verify_aggregate(self, publics, message: bytes, aggregate) -> bool:
        """Two pairings, regardless of the number of signers."""
        pks = [
            pk.public if isinstance(pk, blssig.BlsKeyPair) else pk for pk in publics
        ]
        return blssig.verify_aggregate(pks, message, aggregate)


# ---------------------------------------------------------------------------
# Chunk packages
# ---------------------------------------------------------------------------
def _serialize_proofs(proofs: Sequence[InsertionProof]) -> bytes:
    parts = [len(proofs).to_bytes(4, "big")]
    for proof in proofs:
        parts.append(len(proof.identifier).to_bytes(4, "big"))
        parts.append(proof.identifier)
        parts.append(len(proof.value).to_bytes(4, "big"))
        parts.append(proof.value)
        parts.append(len(proof.steps).to_bytes(4, "big"))
        for step in proof.steps:
            parts.append(step.idh)
            parts.append(len(step.value).to_bytes(4, "big"))
            parts.append(step.value)
            parts.append(step.other)
    return b"".join(parts)


@dataclass(frozen=True)
class ChunkHeader:
    """The committed summary of one chunk: its digest transition plus a hash
    binding the chunk's extension proofs.

    Headers are small, so an auditor of chunk ``i`` can also fetch header
    ``i-1`` cheaply to check boundary continuity (chunk i must start where
    chunk i-1 ended) — with every chunk audited by some honest HSM, the full
    chain d → d' is then verified end to end.
    """

    index: int
    start_digest: bytes
    end_digest: bytes
    proofs_hash: bytes

    def leaf_bytes(self) -> bytes:
        """Canonical serialization committed under the Merkle root R."""
        return b"".join(
            [
                self.index.to_bytes(4, "big"),
                self.start_digest,
                self.end_digest,
                self.proofs_hash,
            ]
        )


@dataclass(frozen=True)
class ChunkPackage:
    """One audited unit: a header plus the chunk's extension proofs.

    The proofs' wire serialization is computed once per package and cached
    (``build``, ``proofs_consistent``, and ``wire_size`` used to serialize
    the same tuple independently).  The cache is a non-field attribute, so
    ``dataclasses.replace`` — how adversaries forge variant packages —
    yields a package that re-serializes its own (tampered) proofs.
    """

    header: ChunkHeader
    proofs: Tuple[InsertionProof, ...]

    def serialized_proofs(self) -> bytes:
        """The chunk's proofs in wire form, serialized at most once."""
        cached = getattr(self, "_serialized_proofs", None)
        if cached is None:
            cached = _serialize_proofs(self.proofs)
            object.__setattr__(self, "_serialized_proofs", cached)
        return cached

    @staticmethod
    def build(
        index: int, start_digest: bytes, end_digest: bytes, proofs: Sequence[InsertionProof]
    ) -> "ChunkPackage":
        """Build a package, hashing the proofs into its committed header."""
        proofs = tuple(proofs)
        serialized = _serialize_proofs(proofs)
        header = ChunkHeader(
            index=index,
            start_digest=start_digest,
            end_digest=end_digest,
            proofs_hash=sha256(b"chunk-proofs", serialized),
        )
        package = ChunkPackage(header=header, proofs=proofs)
        object.__setattr__(package, "_serialized_proofs", serialized)
        return package

    def proofs_consistent(self) -> bool:
        """Do the attached proofs really hash to the committed header?"""
        # The hash is always recomputed (auditors must re-check it); only
        # the serialization is cached, keeping sha256_block counts exact.
        return self.header.proofs_hash == sha256(
            b"chunk-proofs", self.serialized_proofs()
        )

    def wire_size(self) -> int:
        """Approximate bytes on the wire (for I/O cost accounting)."""
        return len(self.header.leaf_bytes()) + len(self.serialized_proofs())


def transition_message(old_digest: bytes, new_digest: bytes, root: bytes) -> bytes:
    """The message every HSM signs: the tuple (d, d', R)."""
    return sha256(b"log-transition", old_digest, new_digest, root)


def shard_transition_message(
    shard: int, num_shards: int, old_digest: bytes, new_digest: bytes, root: bytes
) -> bytes:
    """The signed transition message, domain-separated by shard lane.

    All shards of a sharded log start from the same empty digest, so without
    the ``(shard, num_shards)`` binding a quorum's endorsement of shard k's
    first epoch would verify against shard j too.  ``num_shards == 1``
    reproduces the legacy unsharded message byte-for-byte, keeping metered
    ``sha256_block`` counts for unsharded deployments unchanged.
    """
    if num_shards == 1:
        return transition_message(old_digest, new_digest, root)
    return sha256(
        b"log-transition-shard",
        shard.to_bytes(4, "big"),
        num_shards.to_bytes(4, "big"),
        old_digest,
        new_digest,
        root,
    )


def audit_chunk_indices(
    root: bytes, hsm_id: int, num_chunks: int, audit_count: int
) -> List[int]:
    """Appendix B.3 deterministic audit-set: a function of (R, node id).

    Determinism means every HSM can recompute every other HSM's audit set,
    so when an HSM fails mid-audit the survivors can recursively cover its
    chunks; and the provider cannot grind R freely, since moving R moves
    every HSM's audit set at once.
    """
    if num_chunks <= 0:
        return []
    picks: List[int] = []
    seed = sha256(b"audit-chunks", root, hsm_id.to_bytes(8, "big"))
    counter = 0
    bound = (1 << 64) - ((1 << 64) % num_chunks)
    want = min(audit_count, num_chunks)
    seen = set()
    while len(picks) < want:
        block = sha256(seed, counter.to_bytes(8, "big"))
        counter += 1
        for off in range(0, 32, 8):
            draw = int.from_bytes(block[off : off + 8], "big")
            if draw >= bound:
                continue
            idx = draw % num_chunks
            if idx in seen:
                continue
            seen.add(idx)
            picks.append(idx)
            if len(picks) == want:
                break
    return picks


# ---------------------------------------------------------------------------
# The provider-side log driver
# ---------------------------------------------------------------------------
@dataclass
class LogConfig:
    """Tunables of the log protocol."""

    audit_count: int = 4  # the paper's C = λ = 128; tests use fewer
    quorum_fraction: float = 0.9  # fraction of known HSMs that must sign
    max_garbage_collections: int = 24  # HSMs refuse further GCs after this
    max_attempts_per_user: int = 5  # recovery attempts allowed per user per log
    num_shards: int = 1  # >1 partitions the log into independent epoch lanes


@dataclass(frozen=True)
class CertifiedTransition:
    """A digest transition plus the quorum's aggregate signature over it."""

    old_digest: bytes
    new_digest: bytes
    root: bytes
    aggregate: object
    signer_ids: Tuple[int, ...]
    shard: int = 0  # which shard lane this transition belongs to
    num_shards: int = 1  # sharding arity the signature is bound to


@dataclass
class UpdateRound:
    """Everything the provider publishes for one update epoch.

    HSMs treat this object as the (untrusted) provider's response oracle;
    adversarial providers subclass it to serve inconsistent data, which the
    HSM-side Merkle checks must catch.
    """

    old_digest: bytes
    new_digest: bytes
    root: bytes
    num_chunks: int
    chunks: List[ChunkPackage]
    tree: MerkleTree
    shard: int = 0  # which shard lane proposed this round
    num_shards: int = 1  # sharding arity (1 = legacy unsharded log)

    def chunk_with_proof(self, index: int) -> Tuple[ChunkPackage, MerkleProof]:
        """Serve one chunk plus its Merkle inclusion proof under R."""
        return self.chunks[index], self.tree.prove(index)

    def header_with_proof(self, index: int) -> Tuple[ChunkHeader, MerkleProof]:
        """Serve just a chunk's (small) header plus its proof under R."""
        return self.chunks[index].header, self.tree.prove(index)


class DistributedLog:
    """The service provider's log state plus the update-protocol driver.

    This class is *untrusted* in the threat model: adversaries subclass it
    (see ``repro.adversary``) to serve bogus chunks, rewrite entries, or
    replay stale digests, and the HSM-side checks must catch every attempt.
    """

    def __init__(
        self,
        config: Optional[LogConfig] = None,
        shard_index: int = 0,
        num_shards: int = 1,
    ) -> None:
        if not (0 <= shard_index < num_shards):
            raise ValueError("need 0 <= shard_index < num_shards")
        self.config = config or LogConfig()
        #: position of this log within a sharded partition (0 of 1 = legacy)
        self.shard_index = shard_index
        self.num_shards = num_shards
        self.dict = AuthenticatedDictionary()
        self.ordered_entries: List[Tuple[bytes, bytes]] = []
        self.pending = []
        self.epoch = 0
        self.garbage_collections = 0
        self.archived_logs: List[List[Tuple[bytes, bytes]]] = []
        self.round_history: List[Tuple[bytes, bytes, bytes]] = []
        self.certified_transitions: List[CertifiedTransition] = []
        # Optional durability hook (repro.storage.journal.ProviderJournal):
        # when set, run_update write-ahead-journals every epoch as
        # intent -> commit/rollback and garbage_collect journals its reset.
        # None (the default) keeps the log purely in-memory, byte-identical
        # to the pre-durability behavior.
        self.journal = None
        # Handshake between run_update (which knows the intent's WAL seq)
        # and certify_round (which writes the commit record *before* the
        # acceptance fan-out, so the quorum decision is durable before any
        # device is exposed to it).
        self._journal_intent: Optional[int] = None
        self._journal_committed = False

    # -- client-facing ----------------------------------------------------------
    @property
    def pending(self) -> List[Tuple[bytes, bytes]]:
        """Insertions queued for the next epoch (a snapshot copy).

        A parallel identifier set makes :meth:`insert`'s duplicate check
        O(1) — a million-insertion epoch queues in O(n), not O(n²).  The
        setter (used by ``prepare_update``, rollback, and adversarial
        subclasses that replace the queue wholesale) rebuilds the set, and
        the getter returns a copy so in-place mutation cannot silently
        desync the two: change the queue via :meth:`insert` or by assigning
        ``log.pending = [...]``.
        """
        return list(self._pending)

    @pending.setter
    def pending(self, entries: Sequence[Tuple[bytes, bytes]]) -> None:
        self._pending: List[Tuple[bytes, bytes]] = list(entries)
        self._pending_ids = {identifier for identifier, _ in self._pending}

    @property
    def has_pending(self) -> bool:
        """O(1) emptiness check — reading :attr:`pending` snapshots the
        whole queue, which a per-tick poll must not pay."""
        return bool(self._pending)

    def insert(self, identifier: bytes, value: bytes) -> None:
        """Queue an identifier-value pair for the next update epoch."""
        if identifier in self.dict or identifier in self._pending_ids:
            raise KeyError(f"identifier already defined: {identifier!r}")
        self._pending.append((identifier, value))
        self._pending_ids.add(identifier)

    def get(self, identifier: bytes) -> Optional[bytes]:
        """The committed value for ``identifier``, or None."""
        return self.dict.get(identifier)

    @property
    def digest(self) -> bytes:
        """The current committed digest (what honest devices converge to)."""
        return self.dict.digest

    def prove_includes(self, identifier: bytes, value: bytes):
        """Inclusion proof against the current digest; None if absent."""
        return self.dict.prove_includes(identifier, value)

    # -- the Figure 5 update round ------------------------------------------------
    def prepare_update(self, num_chunks: int) -> UpdateRound:
        """Apply pending insertions chunk-by-chunk and commit to the round."""
        old_digest = self.dict.digest
        pending, self.pending = self.pending, []
        num_chunks = max(1, min(num_chunks, max(1, len(pending))))
        chunk_size = (len(pending) + num_chunks - 1) // num_chunks if pending else 0

        chunks: List[ChunkPackage] = []
        for i in range(num_chunks):
            start = self.dict.digest
            batch = pending[i * chunk_size : (i + 1) * chunk_size] if pending else []
            proofs = []
            for identifier, value in batch:
                proofs.append(self.dict.insert_with_proof(identifier, value))
                self.ordered_entries.append((identifier, value))
            chunks.append(
                ChunkPackage.build(
                    index=i,
                    start_digest=start,
                    end_digest=self.dict.digest,
                    proofs=proofs,
                )
            )
        tree = MerkleTree([c.header.leaf_bytes() for c in chunks])
        round_ = UpdateRound(
            old_digest=old_digest,
            new_digest=self.dict.digest,
            root=tree.root,
            num_chunks=num_chunks,
            chunks=chunks,
            tree=tree,
            shard=self.shard_index,
            num_shards=self.num_shards,
        )
        self.epoch += 1
        self.round_history.append((old_digest, self.dict.digest, tree.root))
        return round_

    def run_update(self, hsms: Sequence) -> None:
        """Drive a full epoch against the fleet; restart on fail-stops.

        ``hsms`` are duck-typed: each must offer ``audit_log_update`` and
        ``accept_log_digest`` (see ``repro.hsm.device.HsmDevice``) and an
        ``is_failed`` attribute.

        The epoch is transactional: if certification fails (no quorum, bad
        chunk), the provider rolls its state back to ``d``.  Without the
        rollback one failed epoch would leave the provider's digest
        permanently ahead of every HSM — no future epoch could ever build
        on it — turning a transient fault into a bricked log.
        """
        online = [h for h in hsms if not h.is_failed]
        entries_before = len(self.ordered_entries)
        pending_before = list(self.pending)
        round_ = self.prepare_update(num_chunks=max(1, len(online)))
        # Write-ahead: the intent (with the entries this epoch applies) is
        # durable before any HSM is asked to certify, so a crash leaves at
        # most one unresolved intent for this lane and restart reconciles
        # it against the fleet (repro.storage.journal).
        intent_seq = None
        if self.journal is not None:
            intent_seq = self.journal.record_intent(
                self.shard_index,
                self.num_shards,
                round_.old_digest,
                round_.new_digest,
                round_.root,
                self.ordered_entries[entries_before:],
            )
        self._journal_intent = intent_seq
        self._journal_committed = False
        try:
            self.certify_round(round_, hsms)
        except Exception:
            self._rollback_failed_round(entries_before, pending_before)
            # A crash (or failure) before the commit record landed rolls the
            # intent back; after it landed the epoch is already durable and
            # the journal must not contradict it.
            if intent_seq is not None and not self._journal_committed:
                self.journal.record_rollback(self.shard_index, intent_seq)
            raise
        finally:
            self._journal_intent = None

    def _rollback_failed_round(
        self, entries_before: int, pending_before: List[Tuple[bytes, bytes]]
    ) -> None:
        """Undo a prepared-but-uncertified round: the insertions go back to
        pending (they can ride a later epoch) and the dictionary is rebuilt
        at its pre-round state."""
        del self.ordered_entries[entries_before:]
        self.dict = AuthenticatedDictionary.from_entries(self.ordered_entries)
        self.pending = pending_before + self.pending
        self.epoch -= 1
        self.round_history.pop()

    def _device_digest(self, hsm) -> bytes:
        """The device's digest for *this* log's shard lane.

        Sharded devices track one digest per shard; unsharded devices (and
        duck-typed test doubles) expose the single ``log_digest``.
        """
        if self.num_shards > 1:
            return hsm.shard_digest(self.shard_index)
        return hsm.log_digest

    def certify_round(self, round_: UpdateRound, hsms: Sequence) -> None:
        """Collect audits + signatures for an already-prepared round."""
        online = [h for h in hsms if not h.is_failed]
        # HSMs that rejoined after missing rounds first replay the chain of
        # certified transitions from their stale digest to the current one.
        for hsm in online:
            if self._device_digest(hsm) != round_.old_digest:
                self.catch_up(hsm)
        signatures = []
        signer_ids = []
        survivors = []
        for hsm in online:
            try:
                sig = hsm.audit_log_update(round_)
            except Exception as exc:
                if getattr(hsm, "is_failed", False):
                    continue  # fail-stopped mid-audit: B.3 coverage below
                raise
            signatures.append(sig)
            signer_ids.append(hsm.index)
            survivors.append(hsm)
        if not signatures:
            raise LogUpdateRejected("no online HSMs to certify the update")
        # Fail fast on a lost quorum *before* any device adopts d': the
        # devices would all reject the aggregate anyway (their quorum check
        # uses the same directory), and raising here keeps acceptance
        # all-or-nothing so a rollback cannot strand devices on d'.
        quorum = self.config.quorum_fraction * len(list(hsms))
        if len(signatures) < quorum:
            raise LogUpdateRejected(
                f"only {len(signatures)} signers, need {quorum:.1f} for a quorum"
            )
        # Appendix B.3: audit sets are deterministic in (R, node id), so the
        # survivors can recompute which chunks the failed HSMs would have
        # audited and recursively cover any gap.
        uncovered = self._uncovered_chunks(round_, signer_ids)
        if uncovered:
            self._cover_chunks(round_, survivors, uncovered)
        scheme = online[0].multisig_scheme
        aggregate = scheme.aggregate(signatures)
        # Record the certified transition *before* fanning out acceptance:
        # once a quorum has signed, the transition is certified regardless
        # of who hears about it, and any device that misses the accept
        # (fail-stop below, or downtime) replays it from this chain via
        # ``catch_up`` — without it, one mid-loop failure would strand the
        # early acceptors on d' forever.
        transition = CertifiedTransition(
            old_digest=round_.old_digest,
            new_digest=round_.new_digest,
            root=round_.root,
            aggregate=aggregate,
            signer_ids=tuple(signer_ids),
            shard=round_.shard,
            num_shards=round_.num_shards,
        )
        self.certified_transitions.append(transition)
        # Durability: the commit record (with the quorum aggregate) lands
        # *before* any device accepts d'.  An intent left open by a crash
        # therefore proves no device moved — restart can roll it back
        # without consulting signatures — and every committed transition is
        # replayable with its aggregate intact, so restored logs can serve
        # catch_up / cross-lane healing to devices that missed the fan-out.
        if self.journal is not None and self._journal_intent is not None:
            self.journal.record_commit(self.shard_index, self._journal_intent, transition)
            self._journal_committed = True
        try:
            for hsm in online:
                try:
                    hsm.accept_log_digest(round_, aggregate, tuple(signer_ids))
                except Exception:
                    if getattr(hsm, "is_failed", False):
                        continue  # fail-stopped mid-accept: catches up later
                    raise
        except Exception:
            # A genuine rejection (every device checks the same aggregate
            # deterministically, so the first device refuses before any
            # accepts): the transition never took effect.
            self.certified_transitions.pop()
            raise

    def _uncovered_chunks(self, round_: UpdateRound, signer_ids: Sequence[int]) -> List[int]:
        """Chunks not in any signer's deterministic audit set."""
        covered = set()
        for signer in signer_ids:
            covered.update(
                audit_chunk_indices(
                    round_.root, signer, round_.num_chunks, self.config.audit_count
                )
            )
        return [i for i in range(round_.num_chunks) if i not in covered]

    def _cover_chunks(self, round_: UpdateRound, survivors: Sequence, chunks: List[int]) -> None:
        """B.3 recursive coverage: survivors re-audit the orphaned chunks.

        Work is spread round-robin; any failure here is a genuine rejection
        (the provider really served a bad chunk), so it propagates.
        """
        if not survivors:
            raise LogUpdateRejected("no survivors available to cover audits")
        for position, chunk_index in enumerate(chunks):
            hsm = survivors[position % len(survivors)]
            hsm.audit_specific_chunks(round_, [chunk_index])

    def catch_up(self, hsm) -> None:
        """Replay quorum-signed digest transitions to a lagging HSM.

        A rejoining HSM never trusts the provider's word for the current
        digest: it verifies each transition's aggregate signature, exactly
        as it would have live.
        """
        chain = self.certified_transitions
        position = None
        for i, transition in enumerate(chain):
            if transition.old_digest == self._device_digest(hsm):
                position = i
                break
        if position is None:
            return  # nothing applicable; the HSM will reject the round
        for transition in chain[position:]:
            hsm.accept_certified_transition(transition)

    # -- garbage collection -------------------------------------------------------
    def garbage_collect(self, hsms: Sequence) -> None:
        """Reset the log (resets every user's attempt counter — §6.2).

        The old log is archived so auditors can still replay history.  HSMs
        count GCs and refuse after ``max_garbage_collections``, bounding how
        often a malicious provider can reset PIN-attempt limits.
        """
        self.archived_logs.append(list(self.ordered_entries))
        for hsm in hsms:
            if not hsm.is_failed:
                hsm.accept_garbage_collection()
        self.dict = AuthenticatedDictionary()
        self.ordered_entries = []
        self.pending = []
        self.garbage_collections += 1
        if self.journal is not None:
            self.journal.record_gc(self.garbage_collections)
