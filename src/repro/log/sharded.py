"""Sharded transparency log: S independent digest chains, one anchor root.

The paper's deployment point is millions of users behind *one* log, whose
update epoch is inherently serial: every insertion rides one digest chain
and every HSM audits one round.  ``ShardedLog`` partitions the log into
``S`` independent :class:`~repro.log.distributed.DistributedLog` shards —
an insertion is routed by a stable hash of its identifier
(:func:`shard_of`), each shard runs the full Figure 5 protocol on its own
digest chain, certified by its own *committee* (the ``N/S`` devices with
``index ≡ shard (mod S)``), and shard epochs never contend with each
other: committees are disjoint, so ``S`` lanes drive disjoint device sets
in parallel (see ``repro.service.batcher.EpochBatcher``), and each device
verifies aggregates of ``N/S`` signatures instead of ``N``.  Devices off a
shard's committee adopt its quorum-signed transitions *lazily*
(``HsmDevice.offer_certified_transition``), keeping the epoch's critical
path free of fleet-wide fan-out.  This is the partitioning move of
datacenter-scale designs (XOS-style state sharding): independent lanes,
deterministic placement, and a thin combining layer.

Auditors and proofs still anchor to **one value**: the *cross-shard root*,
a Merkle root over the ordered shard digests
(:func:`cross_shard_root`).  An inclusion proof becomes a
:class:`ShardedInclusionProof` — the per-shard BST proof plus the Merkle
path from that shard's digest leaf to the root — so any verifier holding
only the root can check membership (:func:`verify_includes_sharded`),
while an HSM that tracks the per-shard digests directly verifies against
its own copy of the shard digest and recomputes the identifier's shard
itself (write-once stays intact: an identifier maps to exactly one shard,
so no value can be re-logged in a sibling lane).

The root is maintained *incrementally*: ``ShardedLog`` keeps a persistent
:class:`~repro.crypto.merkle.IncrementalMerkleTree` over the shard-digest
leaves and, on every root read, rehashes only the O(log S) paths of
shards whose digest moved since the last read (detected by a byte compare
against the cached leaf values, so even out-of-band shard mutation —
adversarial subclasses, chaos tampering — can never serve a stale root).
An epoch that commits one shard therefore costs O(log S) hashing to
re-anchor, not the O(S) rebuild :func:`cross_shard_root` pays — that
function remains as the from-scratch reference, and the incremental root
is byte-identical to it by construction (property-tested in
``tests/test_sharded_log.py``).

Security note on write-once: because ``shard_of`` is a public deterministic
function of the identifier and ``num_shards``, the per-shard duplicate
check *is* the global duplicate check — there is no cross-shard race.  The
shard count is therefore part of the trusted configuration: HSMs bind
``(shard, num_shards)`` into every signed transition
(:func:`~repro.log.distributed.shard_transition_message`) and refuse
rounds whose arity differs from their own.  Committee certification sizes
the quorum to the committee, so the ``f_secret`` compromise bound applies
per ``N/S``-device committee rather than fleet-wide — deployments pick
``S`` accordingly (extra signatures from off-committee auditors only add
scrutiny; they are never required).

Thread safety: individual shards are plain (unsynchronized)
``DistributedLog`` instances.  Concurrent use is safe only under the
one-lane-per-shard discipline: at most one thread drives
``run_shard_update(k, ...)`` for a given ``k`` at a time, and client-facing
mutation (``insert``/``prove_includes``/``pending``) is serialized by the
caller (the serving layer holds ``EpochBatcher.lock``).  ``digest`` holds
``_root_lock`` while folding dirty shard digests into the incremental
root tree, so concurrent root reads never corrupt the tree; it may still
race benignly with a committing lane — callers that need a settled root
read it after joining the lanes.
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.crypto.hashing import sha256
from repro.crypto.merkle import IncrementalMerkleTree, MerkleProof, MerkleTree
from repro.log.authdict import (
    AuthenticatedDictionary,
    InclusionProof,
    verify_includes,
)
from repro.log.distributed import DistributedLog, LogConfig, LogUpdateRejected


def shard_of(identifier: bytes, num_shards: int) -> int:
    """Stable shard routing: a public hash of the identifier.

    ``num_shards == 1`` short-circuits without hashing, so unsharded
    deployments meter zero extra ``sha256_block`` work.
    """
    if num_shards <= 1:
        return 0
    draw = int.from_bytes(sha256(b"log-shard", identifier)[:8], "big")
    return draw % num_shards


def shard_leaf(shard: int, digest: bytes) -> bytes:
    """Canonical leaf committing shard ``shard``'s digest under the root."""
    return shard.to_bytes(4, "big") + digest


def cross_shard_root(digests: Sequence[bytes]) -> bytes:
    """The one value everything anchors to: Merkle over the shard digests."""
    return MerkleTree([shard_leaf(i, d) for i, d in enumerate(digests)]).root


@dataclass(frozen=True)
class ShardedInclusionProof:
    """Inclusion proof for a sharded log, anchored to the cross-shard root.

    ``inclusion`` proves ``(identifier, value)`` under ``shard_digest`` (the
    ordinary Merkle-BST proof); ``shard_path`` proves that
    ``shard_leaf(shard, shard_digest)`` is leaf ``shard`` under the
    cross-shard root.  HSMs, which track the shard digests themselves,
    verify ``inclusion`` directly against their own copy; root-only
    verifiers (clients, auditors) use :func:`verify_includes_sharded`.
    """

    shard: int
    num_shards: int
    shard_digest: bytes
    shard_path: MerkleProof
    inclusion: InclusionProof


def verify_includes_sharded(
    root: bytes, identifier: bytes, value: bytes, proof: ShardedInclusionProof
) -> bool:
    """DoesInclude against the cross-shard root alone.

    Checks (a) the identifier really routes to the claimed shard, (b) the
    BST proof verifies under the claimed shard digest, and (c) the claimed
    shard digest is committed at leaf ``shard`` under ``root``.
    """
    if proof.num_shards < 2 or not (0 <= proof.shard < proof.num_shards):
        return False
    if shard_of(identifier, proof.num_shards) != proof.shard:
        return False
    if not verify_includes(proof.shard_digest, identifier, value, proof.inclusion):
        return False
    if proof.shard_path.index != proof.shard:
        return False
    return MerkleTree.verify(
        root, shard_leaf(proof.shard, proof.shard_digest), proof.shard_path
    )


class _CombinedDictView:
    """Read-only union of the shard dictionaries (``provider.log.dict``)."""

    def __init__(self, sharded: "ShardedLog") -> None:
        self._sharded = sharded

    def __len__(self) -> int:
        return sum(len(s.dict) for s in self._sharded.shards)

    def __contains__(self, identifier: bytes) -> bool:
        return identifier in self._sharded.shard_for(identifier).dict

    def get(self, identifier: bytes) -> Optional[bytes]:
        return self._sharded.shard_for(identifier).dict.get(identifier)

    def items(self) -> Iterable[Tuple[bytes, bytes]]:
        for shard in self._sharded.shards:
            yield from shard.dict.items()


class ShardedLog:
    """``S`` parallel epoch lanes behind the ``DistributedLog`` interface.

    Drop-in for ``provider.log``: the client-facing surface (``insert``,
    ``get``, ``digest``, ``pending``, ``prove_includes``, ``dict``,
    ``run_update``, ``garbage_collect``) matches ``DistributedLog``, with
    ``digest`` meaning the cross-shard root and ``prove_includes``
    returning :class:`ShardedInclusionProof`.  Like ``DistributedLog``,
    this class is *untrusted* in the threat model.
    """

    #: Lock contract (see `repro.lintkit`'s lock-discipline pass): the
    #: incremental root tree and its cached leaf digests are only mutated
    #: under ``_root_lock``, so concurrent ``digest``/``prove_includes``
    #: readers can never interleave partial path updates.
    _GUARDED_BY = {
        "_root_tree": "_root_lock",
        "_root_leaves": "_root_lock",
    }

    def __init__(self, config: Optional[LogConfig] = None, num_shards: Optional[int] = None) -> None:
        self.config = config or LogConfig()
        self.num_shards = num_shards if num_shards is not None else self.config.num_shards
        if self.num_shards < 2:
            raise ValueError(
                "ShardedLog needs >= 2 shards (an unsharded log IS DistributedLog)"
            )
        self.shards: List[DistributedLog] = [
            DistributedLog(self.config, shard_index=k, num_shards=self.num_shards)
            for k in range(self.num_shards)
        ]
        self.dict = _CombinedDictView(self)
        self.garbage_collections = 0
        self.archived_logs: List[List[Tuple[bytes, bytes]]] = []
        self._journal = None
        # Persistent cross-shard root: built once (O(S)), then every root
        # read folds in only the shards whose digest moved (O(log S) each).
        self._root_lock = threading.Lock()
        self._root_leaves: List[bytes] = [s.digest for s in self.shards]
        self._root_tree = IncrementalMerkleTree(
            [shard_leaf(i, d) for i, d in enumerate(self._root_leaves)]
        )

    @property
    def journal(self):
        """The durability journal shared by every shard lane (or None)."""
        return self._journal

    @journal.setter
    def journal(self, journal) -> None:
        self._journal = journal
        for shard in self.shards:
            shard.journal = journal

    # -- routing ---------------------------------------------------------------
    def shard_for(self, identifier: bytes) -> DistributedLog:
        """The shard instance an identifier hashes to."""
        return self.shards[shard_of(identifier, self.num_shards)]

    def shards_with_pending(self) -> List[int]:
        """Indices of shards holding queued insertions (lane work list).

        Uses the O(1) per-shard emptiness check — snapshotting every
        shard's queue just to test truthiness would make the poll O(total
        pending), which the batcher pays every tick.
        """
        return [k for k, shard in enumerate(self.shards) if shard.has_pending]

    # -- client-facing (DistributedLog surface) --------------------------------
    def insert(self, identifier: bytes, value: bytes) -> None:
        """Queue an insertion on the identifier's shard lane."""
        self.shard_for(identifier).insert(identifier, value)

    def get(self, identifier: bytes) -> Optional[bytes]:
        """The committed value for ``identifier``, or None."""
        return self.shard_for(identifier).get(identifier)

    # lint: unguarded[caller holds self._root_lock (digest / prove_includes)]
    def _refresh_root(self) -> IncrementalMerkleTree:
        """Fold dirty shard digests into the persistent root tree.

        Called with ``_root_lock`` held.  Dirtiness is a byte compare of
        each shard's current digest against the cached leaf value — O(S)
        comparisons but no hashing — so any mutation path (epoch commit,
        rollback, GC, restore, adversarial subclassing) is picked up
        without explicit invalidation hooks; only changed shards pay the
        O(log S) path rehash.
        """
        for index, shard in enumerate(self.shards):
            digest = shard.digest
            if digest != self._root_leaves[index]:
                self._root_tree.update(index, shard_leaf(index, digest))
                self._root_leaves[index] = digest
        return self._root_tree

    @property
    def digest(self) -> bytes:
        """The cross-shard root: the single anchor for proofs and audits.

        Incrementally maintained — reading it after an epoch rehashes only
        the committed shards' root paths, byte-identical to
        :func:`cross_shard_root` over the current shard digests.
        """
        with self._root_lock:
            return self._refresh_root().root

    @property
    def shard_digests(self) -> List[bytes]:
        """Every shard's current digest, in shard order (the root's leaves)."""
        return [s.digest for s in self.shards]

    @property
    def pending(self) -> List[Tuple[bytes, bytes]]:
        """All queued insertions, shard-major (each shard's order intact)."""
        return [entry for shard in self.shards for entry in shard.pending]

    @pending.setter
    def pending(self, entries: Sequence[Tuple[bytes, bytes]]) -> None:
        buckets: List[List[Tuple[bytes, bytes]]] = [[] for _ in self.shards]
        for identifier, value in entries:
            buckets[shard_of(identifier, self.num_shards)].append((identifier, value))
        for shard, bucket in zip(self.shards, buckets):
            shard.pending = bucket

    @property
    def has_pending(self) -> bool:
        """O(1)-per-shard emptiness check (no queue snapshots)."""
        return any(shard.has_pending for shard in self.shards)

    @property
    def ordered_entries(self) -> List[Tuple[bytes, bytes]]:
        """Committed entries, shard-major (the auditable public log)."""
        return [entry for shard in self.shards for entry in shard.ordered_entries]

    @property
    def epoch(self) -> int:
        """Total shard epochs committed (observability; lanes count singly)."""
        return sum(s.epoch for s in self.shards)

    @property
    def certified_transitions(self):
        """Every shard's quorum-signed chain, shard-major."""
        return [t for shard in self.shards for t in shard.certified_transitions]

    def shard_entries(self) -> List[List[Tuple[bytes, bytes]]]:
        """Per-shard ordered entry lists (what a sharded audit replays)."""
        return [list(shard.ordered_entries) for shard in self.shards]

    def prove_includes(
        self, identifier: bytes, value: bytes
    ) -> Optional[ShardedInclusionProof]:
        """Root-anchored inclusion proof; None if not committed yet.

        The shard path comes from the persistent root tree (refreshed for
        dirty shards only) — no per-proof O(S) tree rebuild — and is
        byte-identical to a path proved by a from-scratch
        ``MerkleTree`` over the same digests.
        """
        shard_index = shard_of(identifier, self.num_shards)
        inner = self.shards[shard_index].prove_includes(identifier, value)
        if inner is None:
            return None
        with self._root_lock:
            tree = self._refresh_root()
            shard_digest = self._root_leaves[shard_index]
            shard_path = tree.prove(shard_index)
        return ShardedInclusionProof(
            shard=shard_index,
            num_shards=self.num_shards,
            shard_digest=shard_digest,
            shard_path=shard_path,
            inclusion=inner,
        )

    # -- epochs ----------------------------------------------------------------
    def committee(self, shard_index: int, hsms: Sequence) -> List:
        """The devices certifying this shard: index ≡ shard (mod S).

        Static committees are what make lanes contention-free: each lane's
        epoch touches only its own N/S devices, so S lanes drive disjoint
        device sets in parallel, and each device verifies aggregates of
        N/S signatures instead of N.  Devices compute the same partition
        from their signer directory (``HsmDevice.committee_for``) and size
        the quorum to the committee.
        """
        return [h for h in hsms if h.index % self.num_shards == shard_index]

    def run_shard_update(self, shard_index: int, hsms: Sequence) -> None:
        """One transactional update epoch on a single shard lane.

        Exactly ``DistributedLog.run_update`` semantics, run against the
        shard's *committee*: a failed epoch rolls back this shard only and
        re-queues its insertions; sibling lanes are untouched.  After the
        committee certifies, each off-committee device is *offered* (cheap,
        unverified, lock-guarded enqueue — no FIFO round-trip, no crypto)
        the chain suffix past its ``offered_frontier``, so a device that
        shed offers (queue overflow, dropped forgery) is re-fed the missing
        transitions next epoch instead of being stranded; devices verify
        the quorum signature lazily on first use.  Safe to call
        concurrently for distinct shards: committees are disjoint, and the
        offer queue is the device's only cross-lane state.
        """
        shard = self.shards[shard_index]
        shard.run_update(self.committee(shard_index, hsms))
        chain = shard.certified_transitions
        if not chain:
            return
        for hsm in hsms:
            if hsm.index % self.num_shards == shard_index:
                continue
            frontier = hsm.offered_frontier(shard_index)
            if frontier == chain[-1].new_digest:
                continue  # already current (or fully queued)
            # Walk back to the device's frontier; offer everything after it.
            start = 0
            for position in range(len(chain) - 1, -1, -1):
                if chain[position].old_digest == frontier:
                    start = position
                    break
            for transition in chain[start:]:
                hsm.offer_certified_transition(transition)

    def run_update(self, hsms: Sequence) -> None:
        """Run every shard with queued work, one lane at a time.

        This is the sequential (caller-thread) driver used outside the
        serving layer — deployment provisioning, maintenance epochs, tests.
        Every lane is attempted; per-shard failures roll back only their
        shard, and the first failure is re-raised after all lanes ran so a
        bad shard cannot block its siblings' commits.
        """
        failures: List[Tuple[int, Exception]] = []
        for k in self.shards_with_pending():
            try:
                self.run_shard_update(k, hsms)
            except Exception as exc:  # noqa: BLE001 - re-raised below
                failures.append((k, exc))
        if failures:
            shard, first = failures[0]
            if len(failures) == 1:
                raise first
            raise LogUpdateRejected(
                f"{len(failures)} shard epochs failed (first: shard {shard}: {first!r})"
            ) from first

    # -- garbage collection ----------------------------------------------------
    def garbage_collect(self, hsms: Sequence) -> None:
        """Reset all shards as one logical GC (devices consent once each).

        Mirrors ``DistributedLog.garbage_collect``: the combined log is
        archived for auditors, every online HSM's (bounded) GC budget is
        charged exactly one unit, and all shard chains restart empty.
        """
        self.archived_logs.append(self.ordered_entries)
        for hsm in hsms:
            if not hsm.is_failed:
                hsm.accept_garbage_collection()
        for shard in self.shards:
            shard.dict = AuthenticatedDictionary()
            shard.ordered_entries = []
            shard.pending = []
        self.garbage_collections += 1
        if self._journal is not None:
            self._journal.record_gc(self.garbage_collections)

    # -- migration from an unsharded log ----------------------------------------
    @staticmethod
    def migrate(log: DistributedLog, num_shards: int, hsms: Sequence) -> "ShardedLog":
        """One-way migration of a live unsharded log onto ``num_shards`` lanes.

        Every committed entry is re-routed to its hash shard (order
        preserved within each shard) and re-certified through ordinary
        genesis epochs: each device first consents via
        ``accept_reshard`` (one-way — a device that is already sharded
        refuses), then audits every shard's full content from the empty
        digest exactly as it audits any epoch.  What devices *cannot*
        check is completeness — that no pre-migration entry was dropped —
        which is the same (bounded, auditable) trust class as garbage
        collection; :meth:`repro.log.auditor.ExternalAuditor.audit_reshard`
        verifies it offline from the archived unsharded log.

        Requires the whole fleet online: resharding is a provisioning
        operation, and a device that missed it could never rejoin (its
        single-digest state matches no shard chain).
        """
        config = dataclasses.replace(log.config, num_shards=num_shards)
        offline = [h for h in hsms if h.is_failed]
        if offline:
            raise LogUpdateRejected(
                f"resharding needs the full fleet online ({len(offline)} failed)"
            )
        if num_shards > len(list(hsms)):
            raise ValueError("more shards than devices: some committees would be empty")
        sharded = ShardedLog(config)
        for hsm in hsms:
            hsm.accept_reshard(num_shards)
        sharded.pending = list(log.ordered_entries) + list(log.pending)
        sharded.run_update(hsms)
        sharded.garbage_collections = log.garbage_collections
        sharded.archived_logs = list(log.archived_logs) + [list(log.ordered_entries)]
        return sharded


def partition_entries(
    entries: Sequence[Tuple[bytes, bytes]], num_shards: int
) -> List[List[Tuple[bytes, bytes]]]:
    """Order-preserving hash partition (the reference for reshard audits)."""
    buckets: List[List[Tuple[bytes, bytes]]] = [[] for _ in range(num_shards)]
    for identifier, value in entries:
        buckets[shard_of(identifier, num_shards)].append((identifier, value))
    return buckets
