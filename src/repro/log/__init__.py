"""The distributed append-only log (paper §6, Appendix B).

The service provider stores the full log; HSMs hold only a constant-size
digest.  Clients insert ``(identifier, value)`` pairs (recovery attempts);
the provider batches insertions and runs the Figure 5 update protocol, in
which each HSM audits a random subset of update chunks and the fleet
multi-signs each digest transition.  The core guarantee: once any honest HSM
accepts that ``(id, val)`` is in the log, no honest HSM will ever accept
``(id, val')`` for ``val' != val`` — identifiers are write-once, which is
what bounds PIN-guessing attempts.

At scale the log runs sharded (``repro.log.sharded``): S independent
digest chains, each certified by its own device committee, anchored to one
cross-shard Merkle root so proofs and audits still reference a single
value.  ``shard_of`` is the public routing function; write-once holds
because an identifier belongs to exactly one shard.

Thread safety: log objects are unsynchronized; the serving layer owns the
locking (see each module's docstring).  Verifier-side helpers
(``verify_includes``, ``verify_includes_sharded``, multisig verification)
are pure and thread-safe.
"""

from repro.log.authdict import AuthenticatedDictionary, InclusionProof, InsertionProof
from repro.log.distributed import (
    DistributedLog,
    LogUpdateRejected,
    EcdsaMultiSig,
    BlsMultiSig,
)
from repro.log.auditor import ExternalAuditor, AuditFailure
from repro.log.sharded import (
    ShardedInclusionProof,
    ShardedLog,
    cross_shard_root,
    shard_of,
    verify_includes_sharded,
)
from repro.log.membership import (
    MembershipEvent,
    MembershipRegistry,
    MembershipVerifier,
    MembershipViolation,
)

__all__ = [
    "MembershipEvent",
    "MembershipRegistry",
    "MembershipVerifier",
    "MembershipViolation",
    "AuthenticatedDictionary",
    "InclusionProof",
    "InsertionProof",
    "DistributedLog",
    "LogUpdateRejected",
    "EcdsaMultiSig",
    "BlsMultiSig",
    "ExternalAuditor",
    "AuditFailure",
    "ShardedInclusionProof",
    "ShardedLog",
    "cross_shard_root",
    "shard_of",
    "verify_includes_sharded",
]
