"""HSM group membership via the log (paper §6, third use).

"Whenever the service provider wants to add or remove an HSM from the data
center, the service provider operator could record this information in the
log before the other HSMs will accept the change.  All SafetyPin clients
can thus verify that they are communicating with the same set of HSMs.  In
addition, clients can also detect suspicious changes in the set of HSMs"
— described in the paper but not implemented there; implemented here.

Membership events (add / rotate / remove, with the HSM's key commitment)
are ordinary log entries, so they inherit the log's append-only guarantee:
once the fleet certifies an epoch containing a membership event, the
provider can never silently swap the advertised key for that slot.  Clients
verify every entry of a downloaded mpk against the latest logged event and
can flag bulk replacement (e.g. the provider replacing most of the fleet in
a day — the paper's example of a suspicious change).

Thread safety: :class:`MembershipRegistry` is provisioning/maintenance
machinery driven from one thread at a time (deployment creation, key
rotation); it is not locked.  :class:`MembershipVerifier` is all static
pure functions over entry snapshots and is safe anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

_PREFIX = b"mbr|"

ADD = "add"
ROTATE = "rotate"
REMOVE = "remove"


@dataclass(frozen=True)
class MembershipEvent:
    """One logged membership change."""

    sequence: int
    action: str  # add / rotate / remove
    hsm_index: int
    key_epoch: int
    key_commitment: bytes  # the HSM's BFE public-key Merkle root (or b"")

    def identifier(self) -> bytes:
        """The event's log identifier (write-once, sequence-numbered)."""
        return _PREFIX + str(self.sequence).encode("ascii")

    def value(self) -> bytes:
        """The event's log value: action|index|epoch|key-commitment."""
        return b"|".join(
            [
                self.action.encode("ascii"),
                str(self.hsm_index).encode("ascii"),
                str(self.key_epoch).encode("ascii"),
                self.key_commitment.hex().encode("ascii"),
            ]
        )

    @staticmethod
    def parse(identifier: bytes, value: bytes) -> "MembershipEvent":
        """Inverse of ``identifier()``/``value()``; ValueError if malformed."""
        if not identifier.startswith(_PREFIX):
            raise ValueError("not a membership identifier")
        sequence = int(identifier[len(_PREFIX):])
        action, index, epoch, commitment = value.split(b"|")
        return MembershipEvent(
            sequence=sequence,
            action=action.decode("ascii"),
            hsm_index=int(index),
            key_epoch=int(epoch),
            key_commitment=bytes.fromhex(commitment.decode("ascii")),
        )


class MembershipRegistry:
    """Provider-side recorder of membership events.

    The registry only *writes* events into the distributed log; all
    verification is client-side (:class:`MembershipVerifier`), against log
    state the fleet has certified.
    """

    def __init__(self, log) -> None:
        self._log = log
        self._sequence = 0

    def rebind(self, log) -> None:
        """Point the registry at a replacement log (e.g. after resharding)."""
        self._log = log

    def resume_from(self, entries: Sequence[Tuple[bytes, bytes]]) -> None:
        """Continue numbering past the events already in a restored log.

        A restarted provider (``Deployment.restore``) must not reuse a
        sequence number: identifiers are write-once, so a collision would
        make every future membership event unrecordable.
        """
        events = MembershipVerifier.events_from_log(list(entries))
        if events:
            self._sequence = events[-1].sequence + 1

    def record(self, action: str, hsm_index: int, key_epoch: int, key_commitment: bytes) -> MembershipEvent:
        """Queue one membership event as a pending log insertion."""
        event = MembershipEvent(
            sequence=self._sequence,
            action=action,
            hsm_index=hsm_index,
            key_epoch=key_epoch,
            key_commitment=key_commitment,
        )
        self._log.insert(event.identifier(), event.value())
        self._sequence += 1
        return event

    def record_fleet(self, public_infos: Sequence) -> None:
        """Log the initial fleet (run once at provisioning)."""
        for info in public_infos:
            self.record(ADD, info.index, info.key_epoch, info.bfe_public.commitment)

    def record_rotation(self, info) -> None:
        """Log an HSM's key rotation (its new public-key commitment)."""
        self.record(ROTATE, info.index, info.key_epoch, info.bfe_public.commitment)


class MembershipViolation(Exception):
    """A downloaded mpk disagrees with the logged membership history."""


class MembershipVerifier:
    """Client-side verification of downloaded key material."""

    @staticmethod
    def events_from_log(entries: Sequence[Tuple[bytes, bytes]]) -> List[MembershipEvent]:
        """Extract and order the membership events among log entries."""
        events = []
        for identifier, value in entries:
            if identifier.startswith(_PREFIX):
                events.append(MembershipEvent.parse(identifier, value))
        events.sort(key=lambda e: e.sequence)
        return events

    @staticmethod
    def current_membership(events: Sequence[MembershipEvent]) -> Dict[int, MembershipEvent]:
        """Fold events into the latest state per HSM slot."""
        state: Dict[int, MembershipEvent] = {}
        for event in events:
            if event.action == REMOVE:
                state.pop(event.hsm_index, None)
            else:
                state[event.hsm_index] = event
        return state

    @classmethod
    def verify_mpk(cls, mpk: Sequence, entries: Sequence[Tuple[bytes, bytes]]) -> None:
        """Every advertised HSM key must match its latest logged event.

        Raises :class:`MembershipViolation` on any mismatch — a provider
        serving a key it never logged (the targeted-substitution attack the
        paper's §2 warns about) is caught here.
        """
        state = cls.current_membership(cls.events_from_log(entries))
        for info in mpk:
            event = state.get(info.index)
            if event is None:
                raise MembershipViolation(
                    f"HSM {info.index} is advertised but was never logged"
                )
            if event.key_commitment != info.bfe_public.commitment:
                raise MembershipViolation(
                    f"HSM {info.index}: advertised key does not match the "
                    f"logged commitment (epoch {event.key_epoch})"
                )
            if event.key_epoch != info.key_epoch:
                raise MembershipViolation(
                    f"HSM {info.index}: epoch mismatch (log says "
                    f"{event.key_epoch}, mpk says {info.key_epoch})"
                )

    @classmethod
    def replacement_fraction(
        cls,
        events: Sequence[MembershipEvent],
        fleet_size: int,
        window: int,
    ) -> float:
        """Fraction of the fleet touched by the last ``window`` events —
        the paper's 'provider replaces all HSMs over the course of a day'
        detector.  Initial ADD events (bootstrapping) are not counted."""
        non_bootstrap = [e for e in events if e.action != ADD or e.key_epoch > 0]
        recent = non_bootstrap[-window:] if window else []
        touched = {e.hsm_index for e in recent}
        return len(touched) / max(1, fleet_size)
