"""Authenticated dictionary: a Merkle binary search tree (Appendix B.2).

Implements the five routines of §6.1 in the style of Nissim–Naor:

- ``Digest(L) -> d``                       — :attr:`AuthenticatedDictionary.digest`
- ``ProveIncludes(L, id, val) -> π``       — :meth:`prove_includes`
- ``DoesInclude(d, id, val, π) -> {0,1}``  — :func:`verify_includes`
- ``ProveExtends(L, L') -> π``             — :meth:`insert_with_proof` (chained)
- ``DoesExtend(d, d', π) -> {0,1}``        — :func:`verify_insertion` / :func:`verify_extension`

Identifiers are ordered by their SHA-256 hash, so the BST is keyed by
uniformly random values and stays balanced in expectation with no rotations.
Insertion without rotation touches exactly one root-to-leaf path, which is
what makes single-insertion extension proofs possible: the proof is the
search path to the (empty) insertion position.  From it a verifier
recomputes both the old root (position empty) and the new root (new leaf
attached) — proving simultaneously that the identifier was absent and that
the new digest is the old tree plus exactly this entry.

Thread safety: none — :class:`AuthenticatedDictionary` is a plain mutable
tree.  The serving layer serializes all access through the epoch batcher's
lock (per shard, a lane is the only writer); the verifier-side functions
at the bottom are pure and safe anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.crypto.hashing import sha256

_EMPTY = sha256(b"authdict-empty")


def _id_hash(identifier: bytes) -> bytes:
    return sha256(b"authdict-id", identifier)


def _node_hash(idh: bytes, value: bytes, left: bytes, right: bytes) -> bytes:
    return sha256(b"authdict-node", idh, value, left, right)


class _Node:
    __slots__ = ("idh", "value", "left", "right", "hash")

    def __init__(self, idh: bytes, value: bytes) -> None:
        self.idh = idh
        self.value = value
        self.left: Optional[_Node] = None
        self.right: Optional[_Node] = None
        self.hash = _node_hash(idh, value, _EMPTY, _EMPTY)

    def rehash(self) -> None:
        left = self.left.hash if self.left else _EMPTY
        right = self.right.hash if self.right else _EMPTY
        self.hash = _node_hash(self.idh, self.value, left, right)


@dataclass(frozen=True)
class PathStep:
    """One node on a search path: its identifier hash, value, and the hash
    of the subtree *not* taken.  The direction taken is implied by comparing
    the target identifier hash with ``idh``."""

    idh: bytes
    value: bytes
    other: bytes


@dataclass(frozen=True)
class InclusionProof:
    """Search path to the target node plus the node's child hashes."""

    steps: Tuple[PathStep, ...]
    left: bytes
    right: bytes


@dataclass(frozen=True)
class InsertionProof:
    """Extension proof for a single insertion: the absence path.

    ``steps`` is the search path from the root to the empty position where
    the new identifier attaches.
    """

    identifier: bytes
    value: bytes
    steps: Tuple[PathStep, ...]


def _fold_path(target_idh: bytes, start: bytes, steps: Sequence[PathStep]) -> bytes:
    """Recompute the root hash from a leafward value and the path above it."""
    node = start
    for step in reversed(steps):
        if target_idh < step.idh:
            node = _node_hash(step.idh, step.value, node, step.other)
        else:
            node = _node_hash(step.idh, step.value, step.other, node)
    return node


class AuthenticatedDictionary:
    """The provider-side log state: full tree, proofs on demand."""

    def __init__(self) -> None:
        self._root: Optional[_Node] = None
        self._entries: Dict[bytes, bytes] = {}

    # -- basic state -------------------------------------------------------
    @property
    def digest(self) -> bytes:
        """The root hash: the constant-size commitment HSMs hold."""
        return self._root.hash if self._root else _EMPTY

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, identifier: bytes) -> bool:
        return identifier in self._entries

    def get(self, identifier: bytes) -> Optional[bytes]:
        """The value logged under ``identifier``, or None."""
        return self._entries.get(identifier)

    def items(self) -> Iterable[Tuple[bytes, bytes]]:
        """All committed ``(identifier, value)`` pairs (arbitrary order)."""
        return self._entries.items()

    # -- search helpers ----------------------------------------------------------
    def _search_path(self, idh: bytes) -> Tuple[List[PathStep], Optional[_Node]]:
        """Walk toward ``idh``; return (steps above, node-or-None at target)."""
        steps: List[PathStep] = []
        node = self._root
        while node is not None and node.idh != idh:
            if idh < node.idh:
                other = node.right.hash if node.right else _EMPTY
                steps.append(PathStep(node.idh, node.value, other))
                node = node.left
            else:
                other = node.left.hash if node.left else _EMPTY
                steps.append(PathStep(node.idh, node.value, other))
                node = node.right
        return steps, node

    # -- the five routines -------------------------------------------------------
    def prove_includes(self, identifier: bytes, value: bytes) -> Optional[InclusionProof]:
        """ProveIncludes: None if (id, val) is not in the log."""
        if self._entries.get(identifier) != value:
            return None
        idh = _id_hash(identifier)
        steps, node = self._search_path(idh)
        assert node is not None
        return InclusionProof(
            steps=tuple(steps),
            left=node.left.hash if node.left else _EMPTY,
            right=node.right.hash if node.right else _EMPTY,
        )

    def insert(self, identifier: bytes, value: bytes) -> None:
        """Insert a fresh identifier (raises KeyError on duplicates)."""
        self.insert_with_proof(identifier, value)

    def insert_with_proof(self, identifier: bytes, value: bytes) -> InsertionProof:
        """Insert and return the extension proof for this single insertion."""
        if identifier in self._entries:
            raise KeyError(f"identifier already defined in log: {identifier!r}")
        idh = _id_hash(identifier)
        steps: List[PathStep] = []
        parents: List[_Node] = []
        node = self._root
        while node is not None:
            if idh == node.idh:  # pragma: no cover - blocked by _entries check
                raise KeyError("identifier hash collision")
            parents.append(node)
            if idh < node.idh:
                other = node.right.hash if node.right else _EMPTY
                steps.append(PathStep(node.idh, node.value, other))
                node = node.left
            else:
                other = node.left.hash if node.left else _EMPTY
                steps.append(PathStep(node.idh, node.value, other))
                node = node.right
        new_node = _Node(idh, value)
        if parents:
            parent = parents[-1]
            if idh < parent.idh:
                parent.left = new_node
            else:
                parent.right = new_node
            for ancestor in reversed(parents):
                ancestor.rehash()
        else:
            self._root = new_node
        self._entries[identifier] = value
        return InsertionProof(identifier=identifier, value=value, steps=tuple(steps))

    def snapshot_entries(self) -> Dict[bytes, bytes]:
        """A copy of the raw entries (for external full-replay audits)."""
        return dict(self._entries)

    @staticmethod
    def from_entries(entries: Iterable[Tuple[bytes, bytes]]) -> "AuthenticatedDictionary":
        """Rebuild a dictionary by replaying insertions in order.

        The digest is insertion-order dependent (it is a plain BST), so
        replay must preserve order; the provider's public log is an ordered
        list for exactly this reason.
        """
        d = AuthenticatedDictionary()
        for identifier, value in entries:
            d.insert(identifier, value)
        return d


# -- verifier-side routines (run on HSMs; no tree state needed) -----------------
def verify_includes(
    digest: bytes, identifier: bytes, value: bytes, proof: InclusionProof
) -> bool:
    """DoesInclude: check an inclusion proof against a digest.

    Cost is logarithmic in the log size; reports ``sha256_block`` work to the
    ambient meter via the hash calls.
    """
    idh = _id_hash(identifier)
    for step in proof.steps:
        if step.idh == idh:
            return False  # malformed: target may appear only at the end
    node = _node_hash(idh, value, proof.left, proof.right)
    return _fold_path(idh, node, proof.steps) == digest


def verify_insertion(old_digest: bytes, new_digest: bytes, proof: InsertionProof) -> bool:
    """DoesExtend for a single insertion.

    Checks, against the *same* search path, that (a) the identifier was
    absent from the old tree and the path really hashes to ``old_digest``,
    and (b) attaching the new leaf at that empty position yields exactly
    ``new_digest``.
    """
    idh = _id_hash(proof.identifier)
    # The path must be a valid search path for idh: every step's comparison
    # is implied, but the target must not equal any step (absence).
    for step in proof.steps:
        if step.idh == idh:
            return False
    if _fold_path(idh, _EMPTY, proof.steps) != old_digest:
        return False
    leaf = _node_hash(idh, proof.value, _EMPTY, _EMPTY)
    return _fold_path(idh, leaf, proof.steps) == new_digest


def verify_extension(
    old_digest: bytes, new_digest: bytes, proofs: Sequence[InsertionProof]
) -> bool:
    """DoesExtend for a batch: chain single-insertion proofs."""
    digest = old_digest
    for proof in proofs:
        leaf = _node_hash(_id_hash(proof.identifier), proof.value, _EMPTY, _EMPTY)
        idh = _id_hash(proof.identifier)
        for step in proof.steps:
            if step.idh == idh:
                return False
        if _fold_path(idh, _EMPTY, proof.steps) != digest:
            return False
        digest = _fold_path(idh, leaf, proof.steps)
    return digest == new_digest


def empty_digest() -> bytes:
    """The digest of the empty log (every device's genesis state)."""
    return _EMPTY
